"""The shard worker process: one snapshot over one zero-copy slice.

A worker is a plain :mod:`multiprocessing` process driven entirely by
one duplex pipe.  At bootstrap it attaches the coordinator's
:class:`~repro.engine.parallel.SharedDataset` segment, takes the
contiguous ``[start, stop)`` slice its :class:`WorkerSpec` names (a
true zero-copy view — the plan reordered the matrix so every shard is
contiguous), materialises a local
:class:`~repro.serve.snapshot.ServingSnapshot` with ``copy=False``
over that view, and acknowledges with a ``ready`` message.  After
that it answers one request tuple at a time:

``("skyline", delta)``
    Local ``S_δ`` as *global* row ids — the shard's merge candidates.
    One cube probe when materialised, the ad-hoc kernel otherwise.
``("dominated", (q, delta))``
    Whether any local row δ-dominates the coordinates ``q`` — the
    distributed membership primitive (a point is in the global skyline
    iff *no* shard holds a dominator; the point itself and exact
    duplicates never strictly dominate, so no self-exclusion is
    needed).
``("topk_candidates", (q, delta))``
    Global ids of the local *dynamic* skyline of ``|rows - q|`` — the
    per-point transform makes the union property carry over verbatim
    to dynamic top-k.
``("ping", None)`` / ``("stop", None)``
    Liveness and graceful shutdown.

Every reply carries the request id it answers and the worker-side
compute time in milliseconds, which the coordinator turns into the
per-shard ``compute`` trace spans.  The worker never traces on its
own: request ids propagate *into* it and timings propagate *out*, so
one coordinator-side trace file stitches the whole fan-out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.dominance import dominance_masks_vs_all
from repro.engine.kernels import fast_skyline
from repro.engine.parallel import SharedDataset
from repro.serve.snapshot import ServingSnapshot

__all__ = ["WorkerSpec", "shard_worker_main"]

#: Wire shapes of the shard pipe protocol (documentation aliases).
WorkerRequest = Tuple[int, str, Any]
WorkerReply = Tuple[int, str, Any, float]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker needs, picklable under any start method."""

    index: int
    descriptor: Tuple[str, Tuple[int, ...], str]
    start: int
    stop: int
    #: Global (input-order) row ids of the slice, position-aligned.
    ids: Tuple[int, ...] = field(repr=False)
    engine: str = "packed-filtered"
    max_level: Optional[int] = None
    #: Packed-kernel backend for the local snapshot build; resolves
    #: gracefully in the worker (an unavailable backend degrades to the
    #: bit-identical numpy sweep).
    backend: Optional[str] = None


class _WorkerState:
    """The worker's resident state: view, id map, local snapshot."""

    __slots__ = ("view", "ids", "snapshot")

    def __init__(self, spec: WorkerSpec) -> None:
        full = SharedDataset.attach(spec.descriptor)
        self.view = full[spec.start:spec.stop]
        self.ids = np.asarray(spec.ids, dtype=np.int64)
        if len(self.ids) != len(self.view):
            raise ValueError(
                f"shard {spec.index}: {len(self.ids)} ids for "
                f"{len(self.view)} rows"
            )
        self.snapshot: Optional[ServingSnapshot] = None
        if len(self.view):
            self.snapshot = ServingSnapshot.build(
                self.view, max_level=spec.max_level, engine=spec.engine,
                copy=False, backend=spec.backend,
            )

    def skyline(self, delta: int) -> List[int]:
        if self.snapshot is None:
            return []
        local = self.snapshot.skyline(delta)
        return [int(self.ids[row]) for row in local]

    def dominated(self, q: Tuple[float, ...], delta: int) -> bool:
        if len(self.view) == 0:
            return False
        point = np.asarray(q, dtype=np.float64)
        le, _, eq = dominance_masks_vs_all(self.view, point)
        return bool(np.any(((le & delta) == delta) & ((eq & delta) != delta)))

    def topk_candidates(
        self, q: Tuple[float, ...], delta: Optional[int]
    ) -> List[int]:
        if len(self.view) == 0:
            return []
        transformed = np.abs(self.view - np.asarray(q, dtype=np.float64))
        local = fast_skyline(transformed, delta)
        return [int(self.ids[row]) for row in local]


def _answer(state: _WorkerState, op: str, args: Any) -> Any:
    if op == "skyline":
        return state.skyline(int(args))
    if op == "dominated":
        q, delta = args
        return state.dominated(q, int(delta))
    if op == "topk_candidates":
        q, delta = args
        return state.topk_candidates(q, None if delta is None else int(delta))
    if op == "ping":
        return {"n": len(state.view)}
    raise ValueError(f"unknown shard op {op!r}")


def shard_worker_main(
    spec: WorkerSpec, conn: Connection
) -> None:  # pragma: no cover - exercised in subprocesses
    """Worker entry point: bootstrap, acknowledge, serve until stopped."""
    try:
        try:
            state = _WorkerState(spec)
        except Exception as error:
            conn.send(("failed", spec.index, f"{type(error).__name__}: {error}"))
            return
        conn.send(("ready", spec.index, len(state.view)))
        while True:
            request_id, op, args = conn.recv()
            if op == "stop":
                conn.send((request_id, "ok", None, 0.0))
                break
            started = time.perf_counter()
            try:
                payload = _answer(state, op, args)
            except Exception as error:
                conn.send((
                    request_id, "error",
                    f"{type(error).__name__}: {error}", 0.0,
                ))
                continue
            elapsed_ms = 1000.0 * (time.perf_counter() - started)
            conn.send((request_id, "ok", payload, elapsed_ms))
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        pass  # the coordinator vanished or is tearing us down
    finally:
        try:
            conn.close()
        except OSError:
            pass
