"""The scatter–gather coordinator over N shard worker processes.

One :class:`ShardCoordinator` owns the whole sharded data plane: it
reorders the dataset by the :class:`~repro.shard.plan.ShardPlan` so
every shard is one contiguous slice, places the reordered matrix in a
single :class:`~repro.engine.parallel.SharedDataset` segment, spawns
one :func:`~repro.shard.worker.shard_worker_main` process per shard
(each attaching a zero-copy view of its slice), and serves three
async query ops by scatter → gather → merge:

``skyline``
    Scatter the subspace, gather per-shard *local* skylines, refine
    the union with one :func:`~repro.engine.kernels.fast_skyline` pass
    over the candidate rows.  Exact by the local-skyline union
    property (see :mod:`repro.shard.plan`).
``membership``
    Scatter the queried point's coordinates; the point is in the
    global skyline iff **no** shard holds a δ-dominator.  Exact and
    ``O(n/shards)`` per shard, no merge work at all.
``topk_dynamic``
    Scatter the query point, gather local dynamic-skyline candidates,
    refine the transformed candidates and rank by L1 distance over the
    active dimensions with ties by id — byte-for-byte the
    :func:`~repro.query.dynamic.dynamic_topk` contract.

The pipe endpoints are blocking, so every worker conversation runs in
a thread (``asyncio.to_thread``) and the scatter is an
``asyncio.gather`` over those threads — the merge barrier.  A send,
receive or poll that fails (EOF, broken pipe, timeout) marks the shard
dead on the spot; the query is answered *degraded* from the surviving
shards (the caller receives the failed shard list to attach as a typed
partial-result marker) and a respawn task restores the shard in the
background from the still-mapped shared segment.

Tracing: the coordinator is where ROADMAP item 5's fan-out stitching
happens.  The request id rides the scatter messages into every worker;
each reply's worker-side timing comes back as one per-shard
``compute`` span (``extra={"shard": i}``), each death as a
``WorkerDeath`` failure span, and every query ends with one ``merge``
event carrying barrier wall time plus straggler attribution — which
shard the barrier waited for, and by how much.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.engine.kernels import fast_skyline
from repro.engine.parallel import SharedDataset
from repro.shard.plan import ShardPlan
from repro.shard.worker import WorkerSpec, shard_worker_main
from repro.trace import NULL_TRACER, WORKER_DEATH, TraceEvent, Tracer

__all__ = ["NoLiveShardsError", "ShardDeadError", "ShardCoordinator"]


class ShardDeadError(RuntimeError):
    """One worker conversation failed; the shard is marked dead."""

    def __init__(self, index: int, reason: str) -> None:
        super().__init__(f"shard {index}: {reason}")
        self.index = index
        self.reason = reason


class NoLiveShardsError(RuntimeError):
    """Every shard is dead — there is nobody left to scatter to."""


class _ShardHandle:
    """Coordinator-side endpoint of one worker: pipe + process + lock.

    ``call`` is deliberately blocking — the coordinator always invokes
    it through ``asyncio.to_thread`` — and the per-handle lock
    serialises conversations so replies cannot interleave.
    """

    __slots__ = ("index", "process", "conn", "lock", "alive", "n_local",
                 "_request_ids")

    def __init__(
        self,
        index: int,
        process: multiprocessing.process.BaseProcess,
        conn: Any,
    ) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.alive = True
        self.n_local = 0
        self._request_ids = itertools.count()

    def call(
        self, op: str, args: Any, timeout: float
    ) -> Tuple[Any, float]:
        """One request/reply conversation; raises :class:`ShardDeadError`."""
        if not self.alive:
            raise ShardDeadError(self.index, "already marked dead")
        request_id = next(self._request_ids)
        try:
            with self.lock:
                self.conn.send((request_id, op, args))
                if not self.conn.poll(timeout):
                    raise ShardDeadError(
                        self.index, f"no reply within {timeout:g}s"
                    )
                reply = self.conn.recv()
        except ShardDeadError:
            self.mark_dead()
            raise
        except (EOFError, BrokenPipeError, OSError) as error:
            self.mark_dead()
            raise ShardDeadError(
                self.index, f"{type(error).__name__}: {error}"
            ) from None
        if not isinstance(reply, tuple) or len(reply) != 4:
            self.mark_dead()
            raise ShardDeadError(self.index, f"malformed reply {reply!r}")
        got_id, status, payload, elapsed_ms = reply
        if got_id != request_id:
            self.mark_dead()
            raise ShardDeadError(
                self.index, f"reply id {got_id} for request {request_id}"
            )
        if status != "ok":
            # The worker is healthy; the *request* failed (bad delta …).
            raise ValueError(str(payload))
        return payload, float(elapsed_ms)

    def mark_dead(self) -> None:
        self.alive = False
        process = self.process
        if process.is_alive():
            process.kill()
        process.join(timeout=1.0)

    def shutdown(self, timeout: float) -> None:
        """Polite stop: drain message, then escalate to kill."""
        if self.alive:
            try:
                self.call("stop", None, timeout)
            except (ShardDeadError, ValueError):
                pass
        self.alive = False
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=1.0)
        try:
            self.conn.close()
        except OSError:
            pass


class ShardCoordinator:
    """Owns the shared segment, the workers, and the merge logic.

    Lifecycle is synchronous (``start``/``stop`` block on process
    spawn and join; the service wraps them in ``asyncio.to_thread``),
    queries are coroutines.  ``version`` is constant 0 — the sharded
    tier serves a static dataset; live updates stay on the
    single-process tier until re-sharding lands.
    """

    version = 0

    def __init__(
        self,
        data: np.ndarray,
        plan: ShardPlan,
        engine: str = "packed-filtered",
        max_level: Optional[int] = None,
        backend: Optional[str] = None,
        timeout: float = 30.0,
        tracer: Optional[Tracer] = None,
        auto_respawn: bool = True,
        mp_context: Optional[str] = None,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty 2-D dataset, got shape {data.shape}"
            )
        if data.shape[0] != plan.n or data.shape[1] != plan.d:
            raise ValueError(
                f"plan covers {plan.n}x{plan.d} but data is "
                f"{data.shape[0]}x{data.shape[1]}"
            )
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.plan = plan
        self.engine = engine
        self.max_level = max_level
        self.backend = backend
        self.timeout = float(timeout)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.auto_respawn = auto_respawn
        self._ctx = multiprocessing.get_context(mp_context)
        # Physical layout: rows grouped by shard, one shared segment.
        self._reordered = np.ascontiguousarray(data[plan.order])
        # Position of each global id in the reordered matrix — the
        # refine sweep gathers candidate rows through this.
        position = np.empty(plan.n, dtype=np.int64)
        position[plan.order] = np.arange(plan.n, dtype=np.int64)
        self._position = position
        self._shared: Optional[SharedDataset] = None
        self._handles: List[_ShardHandle] = []
        self._respawning: Set[int] = set()
        self._respawn_tasks: Set["asyncio.Task[None]"] = set()
        self._started = False

    # -- lifecycle (synchronous; wrap in to_thread from async code) ----

    @property
    def n(self) -> int:
        return self.plan.n

    @property
    def d(self) -> int:
        return self.plan.d

    @property
    def handles(self) -> List[_ShardHandle]:
        return list(self._handles)

    @property
    def alive_count(self) -> int:
        return sum(1 for handle in self._handles if handle.alive)

    def knows(self, point_id: int) -> bool:
        return 0 <= point_id < self.plan.n

    def status(self) -> Dict[str, Any]:
        """Ping/metrics payload: the plan plus per-shard liveness."""
        info = self.plan.describe()
        info["alive"] = [handle.alive for handle in self._handles]
        return info

    def start(self) -> None:
        """Share the matrix, spawn every worker, await their readies."""
        if self._started:
            return
        self._shared = SharedDataset(self._reordered)
        try:
            for shard in range(self.plan.shards):
                self._handles.append(self._spawn(shard))
        except Exception:
            self.stop()
            raise
        self._started = True

    def _spawn(self, shard: int) -> _ShardHandle:
        assert self._shared is not None
        start, stop = self.plan.bounds(shard)
        spec = WorkerSpec(
            index=shard,
            descriptor=self._shared.descriptor,
            start=start,
            stop=stop,
            ids=tuple(int(i) for i in self.plan.ids_of(shard)),
            engine=self.engine,
            max_level=self.max_level,
            backend=self.backend,
        )
        ours, theirs = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_worker_main, args=(spec, theirs),
            name=f"repro-shard-{shard}", daemon=True,
        )
        process.start()
        theirs.close()
        handle = _ShardHandle(shard, process, ours)
        if not ours.poll(self.timeout):
            handle.mark_dead()
            raise ShardDeadError(shard, "no ready within bootstrap timeout")
        message = ours.recv()
        if message[0] != "ready":
            handle.mark_dead()
            raise ShardDeadError(shard, f"bootstrap failed: {message!r}")
        handle.n_local = int(message[2])
        return handle

    def stop(self) -> None:
        """Drain every worker and unlink the shared segment."""
        for handle in self._handles:
            handle.shutdown(self.timeout)
        self._handles = []
        if self._shared is not None:
            self._shared.close()
            self._shared = None
        self._started = False

    async def aclose(self) -> None:
        """Async teardown: cancel respawns, then the blocking stop."""
        for task in list(self._respawn_tasks):
            task.cancel()
        self._respawn_tasks.clear()
        await asyncio.to_thread(self.stop)

    # -- shard death / recovery ----------------------------------------

    def _note_death(self, index: int) -> None:
        if self.auto_respawn and index not in self._respawning:
            self._respawning.add(index)
            task = asyncio.get_running_loop().create_task(
                self._respawn(index)
            )
            self._respawn_tasks.add(task)
            task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn(self, index: int) -> None:
        try:
            handle = await asyncio.to_thread(self._spawn, index)
        except Exception as error:
            if self.tracer.enabled:
                self.tracer.emit(TraceEvent(
                    stage="compute", outcome="failure", failure=WORKER_DEATH,
                    detail=f"respawn failed: {error}",
                    extra={"shard": index, "kind": "shard_respawn_failed"},
                ))
            return
        finally:
            self._respawning.discard(index)
        self._handles[index] = handle
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                stage="compute",
                extra={"shard": index, "kind": "shard_respawned"},
            ))

    async def wait_ready(self, timeout: float = 10.0) -> bool:
        """Wait until every shard is alive again (tests, ops tooling)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.alive_count == self.plan.shards:
                return True
            await asyncio.sleep(0.02)
        return self.alive_count == self.plan.shards

    # -- scatter / gather ----------------------------------------------

    def _call_guarded(
        self, handle: _ShardHandle, op: str, args: Any
    ) -> Tuple[int, str, Any, float]:
        """Thread-side worker conversation; never raises for deaths."""
        try:
            payload, elapsed_ms = handle.call(op, args, self.timeout)
        except ShardDeadError as error:
            return (handle.index, "dead", error.reason, 0.0)
        return (handle.index, "ok", payload, elapsed_ms)

    async def _scatter(
        self,
        op: str,
        args: Any,
        request_id: Optional[int],
        delta: Optional[int],
    ) -> Tuple[List[Tuple[int, Any, float]], List[int], float]:
        """Fan ``op`` out to every live shard; gather at the barrier.

        Returns ``(ok, failed, barrier_ms)`` where ``ok`` rows are
        ``(shard, payload, worker_ms)``.  Emits the per-shard compute
        spans (and ``WorkerDeath`` failures) here, on the event-loop
        thread, so trace emission needs no cross-thread locking.
        """
        live = [handle for handle in self._handles if handle.alive]
        if not live:
            raise NoLiveShardsError("all shards are dead")
        barrier_start = time.perf_counter()
        replies = await asyncio.gather(*(
            asyncio.to_thread(self._call_guarded, handle, op, args)
            for handle in live
        ))
        barrier_ms = 1000.0 * (time.perf_counter() - barrier_start)
        ok: List[Tuple[int, Any, float]] = []
        failed: List[int] = []
        tracer = self.tracer
        for index, status, payload, elapsed_ms in replies:
            if status == "ok":
                ok.append((index, payload, elapsed_ms))
                if tracer.enabled:
                    tracer.emit(TraceEvent(
                        stage="compute", request_id=request_id, op=op,
                        delta=delta, snapshot_version=self.version,
                        duration_ms=elapsed_ms, extra={"shard": index},
                    ))
            else:
                failed.append(index)
                if tracer.enabled:
                    tracer.emit(TraceEvent(
                        stage="compute", outcome="failure",
                        failure=WORKER_DEATH, request_id=request_id, op=op,
                        delta=delta, detail=str(payload),
                        extra={"shard": index},
                    ))
                self._note_death(index)
        if not ok:
            raise NoLiveShardsError(
                f"every scattered shard died answering {op!r}"
            )
        return ok, failed, barrier_ms

    def _emit_merge(
        self,
        request_id: Optional[int],
        op: str,
        delta: Optional[int],
        ok: List[Tuple[int, Any, float]],
        failed: List[int],
        barrier_ms: float,
        merge_ms: float,
        candidates: int,
    ) -> None:
        if not self.tracer.enabled:
            return
        timings = [(elapsed_ms, index) for index, _, elapsed_ms in ok]
        straggler_ms, straggler = max(timings)
        fastest_ms, _ = min(timings)
        self.tracer.emit(TraceEvent(
            stage="merge", request_id=request_id, op=op, delta=delta,
            snapshot_version=self.version, duration_ms=merge_ms,
            extra={
                "shards": len(ok),
                "failed_shards": len(failed),
                "candidates": candidates,
                "barrier_ms": round(barrier_ms, 4),
                "straggler_shard": straggler,
                "straggler_ms": round(straggler_ms, 4),
                "fastest_ms": round(fastest_ms, 4),
            },
        ))

    # -- queries -------------------------------------------------------

    async def skyline(
        self, delta: int, request_id: Optional[int] = None
    ) -> Tuple[List[int], List[int]]:
        """``(sorted global S_δ ids, failed shard list)``."""
        ok, failed, barrier_ms = await self._scatter(
            "skyline", int(delta), request_id, delta
        )
        merge_start = time.perf_counter()
        candidate_lists = [payload for _, payload, _ in ok]
        candidates = np.array(
            [pid for chunk in candidate_lists for pid in chunk],
            dtype=np.int64,
        )
        if len(candidates) == 0:
            result: List[int] = []
        else:
            rows = self._reordered[self._position[candidates]]
            survivors = fast_skyline(rows, delta)
            result = sorted(int(pid) for pid in candidates[survivors])
        merge_ms = 1000.0 * (time.perf_counter() - merge_start)
        self._emit_merge(
            request_id, "skyline", delta, ok, failed, barrier_ms,
            merge_ms, len(candidates),
        )
        return result, failed

    async def membership(
        self, point_id: int, delta: int, request_id: Optional[int] = None
    ) -> Tuple[bool, List[int]]:
        """``(p ∈ S_δ, failed shard list)``; KeyError for unknown ids."""
        if not self.knows(point_id):
            raise KeyError(f"unknown point id {point_id}")
        q = tuple(float(v) for v in self._reordered[self._position[point_id]])
        ok, failed, barrier_ms = await self._scatter(
            "dominated", (q, int(delta)), request_id, delta
        )
        merge_start = time.perf_counter()
        member = not any(payload for _, payload, _ in ok)
        merge_ms = 1000.0 * (time.perf_counter() - merge_start)
        self._emit_merge(
            request_id, "membership", delta, ok, failed, barrier_ms,
            merge_ms, len(ok),
        )
        return member, failed

    async def topk_dynamic(
        self,
        q: Sequence[float],
        k: int = 10,
        delta: Optional[int] = None,
        request_id: Optional[int] = None,
    ) -> Tuple[List[int], List[int]]:
        """``(top-k dynamic skyline ids, failed shard list)``.

        The refine + rank mirrors :func:`repro.query.dynamic.dynamic_topk`
        exactly: L1 distance over the active dimensions, ties by id.
        """
        query = tuple(float(v) for v in q)
        if len(query) != self.d:
            raise ValueError(
                f"query must have {self.d} coordinates, got {len(query)}"
            )
        ok, failed, barrier_ms = await self._scatter(
            "topk_candidates", (query, delta), request_id, delta
        )
        merge_start = time.perf_counter()
        candidates = np.array(
            sorted(pid for _, payload, _ in ok for pid in payload),
            dtype=np.int64,
        )
        if len(candidates) == 0:
            result: List[int] = []
        else:
            rows = self._reordered[self._position[candidates]]
            transformed = np.abs(rows - np.asarray(query, dtype=np.float64))
            survivors = fast_skyline(transformed, delta)
            if delta is None:
                active = transformed[survivors]
            else:
                dims = [j for j in range(self.d) if delta & (1 << j)]
                active = transformed[np.ix_(survivors, dims)]
            distance = active.sum(axis=1)
            ranked = sorted(zip(
                distance.tolist(),
                (int(pid) for pid in candidates[survivors]),
            ))
            result = [pid for _, pid in ranked[:k]]
        merge_ms = 1000.0 * (time.perf_counter() - merge_start)
        self._emit_merge(
            request_id, "topk_dynamic", delta, ok, failed, barrier_ms,
            merge_ms, len(candidates),
        )
        return result, failed
