"""Template skycube algorithms for heterogeneous parallelism.

A faithful reimplementation of Bøgh, Chester, Šidlauskas & Assent,
*"Template Skycube Algorithms for Heterogeneous Parallelism on
Multicore and GPU Architectures"* (SIGMOD 2017), including every
substrate the paper builds on: the skyline algorithm zoo, point-based
partitioning trees, skycube representations, the three parallel
templates with CPU/GPU specialisations, and a simulated heterogeneous
platform standing in for the paper's dual-socket Xeon + three CUDA
GPUs (see DESIGN.md for the substitution map).

Quick start::

    import numpy as np
    from repro import MDMC, fast_skyline

    data = np.random.rand(1000, 6)
    skyline_ids = fast_skyline(data)          # one skyline query
    cube = MDMC("cpu").materialise(data).skycube
    cube.skyline(0b000011)                    # skyline of dims {0, 1}
"""

from repro.core.analytics import (
    minimal_subspaces,
    most_robust_points,
    skyline_frequency,
)
from repro.core.closed import ClosedSkycube
from repro.core.hashcube import HashCube
from repro.core.lattice import Lattice
from repro.core.maintain import SkycubeMaintainer
from repro.core.serialize import load_skycube, save_skycube
from repro.core.skycube import Skycube
from repro.core.skylists import SkylistCube
from repro.core.skyline import extended_skyline_indices, skyline_indices
from repro.data.generator import generate
from repro.data.realistic import load_real
from repro.engine import (
    ParallelExecutor,
    SharedDataset,
    fast_extended_skyline,
    fast_skycube,
    fast_skyline,
)
from repro.hardware import (
    CPUConfig,
    GPUConfig,
    PlatformConfig,
    paper_platform,
    simulate_cpu,
    simulate_gpu,
    simulate_heterogeneous,
)
from repro.instrument.counters import Counters
from repro.query import SubskyIndex, dynamic_skycube, dynamic_skyline
from repro.skycube import (
    BottomUpSkycube,
    DistributedSkycube,
    PQSkycube,
    QSkycube,
    SkycubeRun,
)
from repro.templates import MDMC, SDSC, STSC, TemplateSpecialisationError

__version__ = "1.0.0"

__all__ = [
    "HashCube",
    "ClosedSkycube",
    "SkylistCube",
    "SkycubeMaintainer",
    "save_skycube",
    "load_skycube",
    "skyline_frequency",
    "minimal_subspaces",
    "most_robust_points",
    "SubskyIndex",
    "dynamic_skyline",
    "dynamic_skycube",
    "Lattice",
    "Skycube",
    "SkycubeRun",
    "skyline_indices",
    "extended_skyline_indices",
    "generate",
    "load_real",
    "fast_skyline",
    "ParallelExecutor",
    "SharedDataset",
    "fast_extended_skyline",
    "fast_skycube",
    "CPUConfig",
    "GPUConfig",
    "PlatformConfig",
    "paper_platform",
    "simulate_cpu",
    "simulate_gpu",
    "simulate_heterogeneous",
    "Counters",
    "QSkycube",
    "PQSkycube",
    "BottomUpSkycube",
    "DistributedSkycube",
    "STSC",
    "SDSC",
    "MDMC",
    "TemplateSpecialisationError",
    "__version__",
]
