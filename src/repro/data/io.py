"""Dataset load/save in the benchmark generator's text format.

The classic skyline benchmark tooling exchanges datasets as whitespace-
separated text, one point per line.  We support that plus a compact
``.npy`` binary path for larger workloads.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

__all__ = ["save_dataset", "load_dataset"]

PathLike = Union[str, "os.PathLike[str]"]


def save_dataset(data: np.ndarray, path: PathLike) -> None:
    """Write an ``(n, d)`` dataset; format chosen by file extension.

    ``.npy`` saves binary; anything else writes the benchmark text
    format (space-separated, ``%.9g`` precision).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected 2-D dataset, got shape {data.shape}")
    path = os.fspath(path)
    if path.endswith(".npy"):
        np.save(path, data)
    else:
        np.savetxt(path, data, fmt="%.9g")


def load_dataset(path: PathLike) -> np.ndarray:
    """Read a dataset written by :func:`save_dataset`."""
    path = os.fspath(path)
    if path.endswith(".npy"):
        data = np.load(path)
    else:
        data = np.loadtxt(path, dtype=np.float64, ndmin=2)
    if data.ndim != 2 or data.shape[0] == 0 or data.shape[1] == 0:
        raise ValueError(f"{path} does not contain a non-empty 2-D dataset")
    return np.asarray(data, dtype=np.float64)
