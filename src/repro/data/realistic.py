"""Stand-ins for the paper's real datasets (Table 2, Appendix A.1).

The originals (NBA basketball statistics, IPUMS household expenditure,
UCI Covertype cartography, CRU global weather) are not redistributable
here, so each is replaced by a seeded synthesizer that reproduces the
*structural properties the evaluation depends on*:

* **NBA**  — small (17 264 × 8), several strongly correlated attributes
  (minutes/points/rebounds all track playing time), tiny extended
  skyline (~0.1 % of n).
* **HH**   — 127 931 × 6, percentage-of-budget rows (non-negative,
  near-constant row sums), tiny extended skyline (~0.005 · n).
* **CT**   — 581 012 × 10, low-cardinality attributes (e.g. hillshade on
  a 255-value scale) so many points share optimum values; ~74 % of the
  dataset lands in the extended skyline.
* **WE**   — 566 268 × 15, coordinates clustered into continents and
  mountain ranges plus 12 seasonally-correlated precipitation values;
  moderate extended skyline (~14 % of n).

Sizes scale with ``scale`` (default 1/20th of the original) so pure
Python remains practical; the per-dataset ratios of n, d and |S+| are
preserved, which is what Table 3's relative results hinge on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

__all__ = ["RealDataset", "REAL_DATASETS", "load_real", "dataset_summary"]


@dataclass(frozen=True)
class RealDataset:
    """A named real-data stand-in with its paper-reported statistics."""

    name: str
    paper_n: int
    d: int
    paper_extended_size: int
    description: str
    maker: Callable[[int, int], np.ndarray]

    def generate(self, scale: float = 0.05, seed: int = 0) -> np.ndarray:
        """Materialise the stand-in at ``round(paper_n * scale)`` rows."""
        n = max(64, int(round(self.paper_n * scale)))
        return self.maker(n, seed)


def _nba(n: int, seed: int) -> np.ndarray:
    """Per-season player statistics: skill × playing-time structure."""
    rng = np.random.default_rng(seed)
    # Latent skill and minutes drive most counting stats, producing the
    # strong inter-attribute correlation of the real table.
    skill = rng.beta(2.0, 5.0, n)
    minutes = rng.beta(2.0, 2.0, n)
    volume = skill * minutes
    stats = []
    for weight in (1.0, 0.9, 0.8, 0.7, 0.6):
        noise = rng.normal(0.0, 0.08, n)
        stats.append(np.clip(weight * volume + noise, 0.0, 1.0))
    # Three specialist stats (blocks, steals, 3pt%) are weakly coupled.
    for _ in range(3):
        specialist = rng.beta(1.5, 6.0, n)
        stats.append(np.clip(0.3 * volume + 0.7 * specialist, 0.0, 1.0))
    # Smaller is better throughout the library, so invert "bigger is
    # better" sports stats.
    return 1.0 - np.column_stack(stats)


def _household(n: int, seed: int) -> np.ndarray:
    """Budget shares around a common spending profile (6 categories).

    Households mostly scale one canonical profile by their spending
    level, with small idiosyncratic noise — the positive correlation
    that gives the real HH its tiny extended skyline (Table 2).
    """
    rng = np.random.default_rng(seed)
    profile = np.array([0.35, 0.20, 0.15, 0.12, 0.10, 0.08])
    level = rng.beta(2.0, 2.0, n)[:, None]  # overall spending level
    noise = rng.normal(0.0, 0.015, (n, len(profile)))
    return np.clip(profile * (0.5 + level) + noise, 0.0, 1.0)


def _covertype(n: int, seed: int) -> np.ndarray:
    """Cartographic variables quantised to low-cardinality scales.

    Hillshade-like attributes use 64 distinct values and several others
    192, so optimum values are massively duplicated — driving the real
    CT's 74 % extended skyline and the parent/child sharing advantage
    PQSkycube shows on it (Table 3 discussion).
    """
    rng = np.random.default_rng(seed)
    columns = []
    cardinalities = (192, 192, 64, 64, 64, 128, 128, 96, 96, 192)
    for card in cardinalities:
        values = rng.integers(0, card, n)
        columns.append(values / (card - 1))
    data = np.column_stack(columns)
    # Terrain correlation: elevation influences slope-facing attributes.
    data[:, 1] = np.clip(0.5 * data[:, 0] + 0.5 * data[:, 1], 0.0, 1.0)
    steps = np.maximum(np.round(data[:, 1] * 191), 0)
    data[:, 1] = steps / 191
    return data


def _weather(n: int, seed: int) -> np.ndarray:
    """Clustered coordinates + 12 seasonally correlated precip values."""
    rng = np.random.default_rng(seed)
    num_clusters = 24  # continents / mountain ranges
    centers = rng.random((num_clusters, 3))
    assignment = rng.integers(0, num_clusters, n)
    coords = np.clip(
        centers[assignment] + rng.normal(0.0, 0.04, (n, 3)), 0.0, 1.0
    )
    # Each cluster is a biome with its own annual precipitation curve;
    # a record deviates from its biome's curve mostly by a single
    # wetness scalar (wet year vs dry year), so the 12 month values are
    # strongly correlated — keeping the extended skyline moderate
    # despite d=15, as in the real data (Table 2).
    phase = rng.random(num_clusters) * 2 * np.pi
    wetness = rng.beta(2.0, 2.0, num_clusters)
    months = np.arange(12) / 12.0 * 2 * np.pi
    seasonal = 0.5 + 0.4 * np.sin(months[None, :] + phase[:, None])
    base = wetness[:, None] * seasonal  # (clusters, 12)
    year_shift = rng.normal(0.0, 0.10, (n, 1))
    precip = np.clip(
        base[assignment] + year_shift + rng.normal(0.0, 0.015, (n, 12)),
        0.0,
        1.0,
    )
    # Smaller is better: prefer extreme (high) precipitation → invert.
    return np.column_stack([coords, 1.0 - precip])


REAL_DATASETS: Dict[str, RealDataset] = {
    "NBA": RealDataset(
        "NBA", 17_264, 8, 1_796,
        "basketball player seasons (correlated counting stats)", _nba,
    ),
    "HH": RealDataset(
        "HH", 127_931, 6, 5_774,
        "household budget shares (tiny extended skyline)", _household,
    ),
    "CT": RealDataset(
        "CT", 581_012, 10, 432_253,
        "cartography with low-cardinality attributes (duplicate-heavy)",
        _covertype,
    ),
    "WE": RealDataset(
        "WE", 566_268, 15, 78_036,
        "clustered coordinates + seasonal precipitation", _weather,
    ),
}


def load_real(name: str, scale: float = 0.05, seed: int = 0) -> np.ndarray:
    """Generate the named stand-in dataset (case-insensitive)."""
    try:
        dataset = REAL_DATASETS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown real dataset {name!r}; available: {sorted(REAL_DATASETS)}"
        ) from None
    return dataset.generate(scale=scale, seed=seed)


def dataset_summary(name: str, scale: float = 0.05, seed: int = 0) -> Dict[str, object]:
    """Table-2-style row: n, d, |S+| for the generated stand-in."""
    from repro.core.skyline import extended_skyline_indices

    dataset = REAL_DATASETS[name.upper()]
    data = dataset.generate(scale=scale, seed=seed)
    extended = extended_skyline_indices(data)
    return {
        "name": dataset.name,
        "n": data.shape[0],
        "d": data.shape[1],
        "extended_skyline": len(extended),
        "extended_fraction": len(extended) / data.shape[0],
        "paper_n": dataset.paper_n,
        "paper_extended_fraction": dataset.paper_extended_size / dataset.paper_n,
        "description": dataset.description,
    }
