"""Persistence for materialised skycubes.

A skycube is expensive to build and cheap to query — the whole point of
materialisation — so a downstream user needs to compute once and load
thereafter.  This module serialises the two primary representations:

* lattices as ``.npz`` (one id array per cuboid, keyed by subspace);
* HashCubes as ``.npz`` via their per-point masks (word-width and bit
  order preserved), reconstructing exact structures on load.

The format embeds a small JSON header with the representation type,
dimensionality and library version, and refuses files whose header it
does not understand — loud failure over silent misreads.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.core.hashcube import HashCube
from repro.core.lattice import Lattice
from repro.core.skycube import Skycube

__all__ = ["save_skycube", "load_skycube"]

FORMAT_VERSION = 1
PathLike = Union[str, "os.PathLike[str]"]


def save_skycube(skycube: Skycube, path: PathLike) -> None:
    """Serialise a (complete or partial) skycube to ``path`` (.npz)."""
    store = skycube.store
    header = {
        "format": FORMAT_VERSION,
        "d": skycube.d,
        "max_level": skycube.max_level,
    }
    arrays = {}
    if isinstance(store, Lattice):
        header["representation"] = "lattice"
        for delta, ids in store.cuboids():
            arrays[f"cuboid_{delta}"] = np.asarray(ids, dtype=np.int64)
    elif isinstance(store, HashCube):
        header["representation"] = "hashcube"
        header["word_width"] = store.word_width
        header["bit_order"] = store.bit_order
        point_ids = store.point_ids()
        arrays["point_ids"] = np.asarray(point_ids, dtype=np.int64)
        # Masks can exceed 64 bits: store as fixed-width byte rows.
        num_bytes = -(-store.num_subspaces // 8)
        masks = np.zeros((len(point_ids), num_bytes), dtype=np.uint8)
        for row, pid in enumerate(point_ids):
            mask = store.membership_mask(pid)
            masks[row] = np.frombuffer(
                mask.to_bytes(num_bytes, "little"), dtype=np.uint8
            )
        arrays["masks"] = masks
    else:
        raise TypeError(f"unsupported store type {type(store).__name__}")
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(os.fspath(path), **arrays)


def load_skycube(path: PathLike) -> Skycube:
    """Load a skycube written by :func:`save_skycube`."""
    with np.load(os.fspath(path)) as archive:
        try:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
        except (KeyError, ValueError) as error:
            raise ValueError(f"{path} is not a skycube file: {error}")
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported skycube format {header.get('format')!r}"
            )
        d = header["d"]
        max_level = header["max_level"]
        representation = header["representation"]
        if representation == "lattice":
            lattice = Lattice(d)
            for key in archive.files:
                if key.startswith("cuboid_"):
                    delta = int(key[len("cuboid_"):])
                    lattice.set_cuboid(delta, archive[key].tolist())
            return Skycube(lattice, max_level=max_level)
        if representation == "hashcube":
            cube = HashCube(
                d,
                word_width=header["word_width"],
                bit_order=header["bit_order"],
            )
            point_ids = archive["point_ids"]
            masks = archive["masks"]
            for pid, row in zip(point_ids.tolist(), masks):
                cube.insert(pid, int.from_bytes(row.tobytes(), "little"))
            return Skycube(cube, max_level=max_level)
        raise ValueError(f"unknown representation {representation!r}")
