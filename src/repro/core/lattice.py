"""The lattice skycube representation (Figure 1a).

A lattice maps every non-empty subspace ``δ`` of a d-dimensional space to
the flat, sorted array of point ids in ``S_δ(P)``.  It is the structure
used by all prior skycube algorithms; its drawback — each id replicated
in up to ``2**(d-1)`` cuboids — is what the HashCube (Figure 1b) fixes.

During top-down construction the lattice also carries, per cuboid, the
*extra* extended-skyline ids ``L+[δ] = S+_δ \\ S_δ``, because child
cuboids use ``L[δ] ∪ L+[δ]`` as their reduced input (Algorithm 1/2,
line 6).  Query code only ever sees ``L[δ]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.bitmask import (
    full_space,
    popcount,
    subspaces_at_level,
)

__all__ = ["Lattice"]


class Lattice:
    """Materialised skycube as a per-subspace map of sorted id tuples."""

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ValueError(f"dimensionality must be positive, got {d}")
        self.d = d
        self._skylines: Dict[int, Tuple[int, ...]] = {}
        self._extended_only: Dict[int, Tuple[int, ...]] = {}

    # -- construction -------------------------------------------------

    def set_cuboid(
        self,
        delta: int,
        skyline_ids: Iterable[int],
        extended_only_ids: Iterable[int] = (),
    ) -> None:
        """Record ``S_δ`` (and optionally ``S+_δ \\ S_δ``) for a cuboid."""
        self._check_delta(delta)
        self._skylines[delta] = tuple(sorted(skyline_ids))
        extended = tuple(sorted(extended_only_ids))
        if extended:
            self._extended_only[delta] = extended
        else:
            self._extended_only.pop(delta, None)

    def remove_cuboid(self, delta: int) -> None:
        """Remove a cuboid entirely (partial-skycube helper entries)."""
        self._skylines.pop(delta, None)
        self._extended_only.pop(delta, None)

    def drop_extended(self, delta: int) -> None:
        """Free the construction-only extended ids of a finished cuboid.

        PQSkycube's minor speed-up over QSkycube (Figure 4) comes from
        freeing structures once the traversal has moved two levels past
        them; this is the lattice-side half of that.
        """
        self._extended_only.pop(delta, None)

    # -- queries ------------------------------------------------------

    def skyline(self, delta: int) -> Tuple[int, ...]:
        """``S_δ(P)`` as a sorted id tuple; KeyError if not materialised."""
        self._check_delta(delta)
        return self._skylines[delta]

    def extended_skyline(self, delta: int) -> Tuple[int, ...]:
        """``S+_δ(P)`` = skyline ids plus the stored extended extras."""
        sky = self.skyline(delta)
        extra = self._extended_only.get(delta, ())
        return tuple(sorted(set(sky) | set(extra)))

    def extended_only(self, delta: int) -> Tuple[int, ...]:
        """The construction-time extras ``S+_δ \\ S_δ`` (may be empty)."""
        self._check_delta(delta)
        return self._extended_only.get(delta, ())

    def input_size(self, delta: int) -> int:
        """``|L[δ]| + |L+[δ]|`` — the parent-selection key of line 5."""
        return len(self._skylines[delta]) + len(self._extended_only.get(delta, ()))

    def has_cuboid(self, delta: int) -> bool:
        """True iff ``S_δ`` has been materialised."""
        return delta in self._skylines

    def materialised_subspaces(self) -> List[int]:
        """All subspaces with a stored skyline, ascending."""
        return sorted(self._skylines)

    def is_complete(self, max_level: Optional[int] = None) -> bool:
        """True iff every subspace (up to ``max_level``) is materialised."""
        if max_level is None:
            return len(self._skylines) == full_space(self.d)
        return all(
            delta in self._skylines
            for level in range(1, max_level + 1)
            for delta in subspaces_at_level(self.d, level)
        )

    def cuboids(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Iterate ``(δ, S_δ)`` pairs in ascending subspace order."""
        for delta in sorted(self._skylines):
            yield delta, self._skylines[delta]

    # -- statistics ---------------------------------------------------

    def total_ids_stored(self) -> int:
        """Total id replications across cuboids (the redundancy metric)."""
        return sum(len(ids) for ids in self._skylines.values())

    def memory_bytes(self) -> int:
        """Rough resident size: 4 bytes per stored id + map overhead."""
        id_bytes = 4 * (
            self.total_ids_stored()
            + sum(len(ids) for ids in self._extended_only.values())
        )
        return id_bytes + 16 * len(self._skylines)

    def level_sizes(self) -> Dict[int, int]:
        """Sum of cuboid sizes per lattice level (for Figure 13 analysis)."""
        sizes: Dict[int, int] = {}
        for delta, ids in self._skylines.items():
            level = popcount(delta)
            sizes[level] = sizes.get(level, 0) + len(ids)
        return sizes

    # -- interop ------------------------------------------------------

    @classmethod
    def from_dict(cls, d: int, skylines: Dict[int, Sequence[int]]) -> "Lattice":
        """Build a lattice from a ``{δ: ids}`` mapping (tests, fixtures)."""
        lattice = cls(d)
        for delta, ids in skylines.items():
            lattice.set_cuboid(delta, ids)
        return lattice

    def to_dict(self) -> Dict[int, Tuple[int, ...]]:
        """Plain ``{δ: sorted ids}`` mapping of materialised skylines."""
        return dict(self._skylines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lattice):
            return NotImplemented
        return self.d == other.d and self._skylines == other._skylines

    def __len__(self) -> int:
        return len(self._skylines)

    def __repr__(self) -> str:
        return (
            f"Lattice(d={self.d}, cuboids={len(self._skylines)}/"
            f"{full_space(self.d)}, ids={self.total_ids_stored()})"
        )

    def _check_delta(self, delta: int) -> None:
        if not 0 < delta <= full_space(self.d):
            raise KeyError(f"invalid subspace {delta} for d={self.d}")
