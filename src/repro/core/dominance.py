"""Dominance tests and per-dimension comparison masks.

Smaller values are better throughout (the paper's WLOG convention).

Two flavours of comparison appear in every algorithm of the paper:

* **Dominance tests (DTs)** load up to ``|δ|`` coordinates of each point
  and evaluate Definition 1 directly.
* **Mask tests (MTs)** compare two points *transitively* through a common
  pivot using only their precomputed partition bitmasks (Equation 1,
  Appendix B.2) — one integer load instead of ``|δ|`` float loads.

This module implements both, plus the vectorized mask construction used
by the fast engine.  Optional :class:`~repro.instrument.counters.Counters`
objects record how many of each operation ran, which is what the hardware
cost model consumes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.instrument.counters import Counters

__all__ = [
    "comparison_masks",
    "dominates",
    "strictly_dominates",
    "dominance_masks_vs_all",
    "dominance_pair_codes",
    "dominance_matrix",
    "dominated_mask",
    "mask_test",
    "rank_columns",
    "PairCoder",
    "DominanceTester",
]


def comparison_masks(p: Sequence[float], q: Sequence[float]) -> Tuple[int, int, int]:
    """Per-dimension relation between ``p`` and ``q``.

    Returns ``(le, lt, eq)`` where bit ``i`` of ``le`` is set iff
    ``p[i] <= q[i]`` and analogously for ``lt`` and ``eq``.  These are the
    paper's ``B_{p<=q}``, ``B_{p<q}`` and ``B_{p=q}``.
    """
    le = lt = eq = 0
    for i, (pi, qi) in enumerate(zip(p, q)):
        bit = 1 << i
        if pi < qi:
            lt |= bit
            le |= bit
        elif pi == qi:
            eq |= bit
            le |= bit
    return le, lt, eq


def dominates(
    p: Sequence[float],
    q: Sequence[float],
    delta: int,
    counters: Optional[Counters] = None,
) -> bool:
    """Definition 1: ``p ≺δ q``.

    ``p`` dominates ``q`` in subspace ``delta`` iff ``p`` is no worse on
    every dimension of ``delta`` and strictly better on at least one.
    """
    if counters is not None:
        counters.dominance_tests += 1
        counters.values_loaded += 2 * bin(delta).count("1")
    le, _, eq = comparison_masks(p, q)
    return (le & delta) == delta and (eq & delta) != delta


def strictly_dominates(
    p: Sequence[float],
    q: Sequence[float],
    delta: int,
    counters: Optional[Counters] = None,
) -> bool:
    """Definition 1: ``p ≺≺δ q`` — strictly better on *every* dim of δ."""
    if counters is not None:
        counters.dominance_tests += 1
        counters.values_loaded += 2 * bin(delta).count("1")
    _, lt, _ = comparison_masks(p, q)
    return (lt & delta) == delta


def dominance_masks_vs_all(
    data: np.ndarray, p: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized ``comparison_masks`` of every row of ``data`` versus ``p``.

    Returns integer arrays ``(le, lt, eq)`` of shape ``(len(data),)`` where
    entry ``j`` encodes the relation of ``data[j]`` (as the left operand)
    to ``p``.  Dimensionality is limited to 63 so masks fit in int64,
    comfortably above the paper's maximum of 16.
    """
    d = data.shape[1]
    if d > 63:
        raise ValueError(f"at most 63 dimensions supported, got {d}")
    weights = (1 << np.arange(d, dtype=np.int64))
    lt = (data < p) @ weights
    eq = (data == p) @ weights
    return lt + eq, lt, eq


def dominance_pair_codes(data: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Packed ``le + (eq << d)`` comparison codes of a block versus ``data``.

    The blocked form of :func:`dominance_masks_vs_all`: entry ``[i, j]``
    encodes the relation of ``data[j]`` (as the left operand) to
    ``block[i]``, with the ``le`` mask in the low ``d`` bits and the
    ``eq`` mask shifted above it — a single integer key per pair, so
    downstream consumers (the packed skycube engine) can deduplicate
    whole blocks of comparisons with one ``np.unique``.  ``lt`` is
    recoverable as ``le & ~eq``.

    This is the reference form for arbitrary ``block`` arrays; the hot
    path (repeated blocks cut from one dataset) is :class:`PairCoder`,
    which rank-encodes the dataset once and exploits the sparsity of
    equality.  Accumulates one dimension at a time into preallocated
    buffers, so peak memory is three ``len(block) × len(data)`` arrays
    rather than the ``× d`` boolean tensor a broadcast-then-dot would
    materialise.
    """
    d = data.shape[1]
    if block.shape[1] != d:
        raise ValueError(
            f"block has {block.shape[1]} dims but data has {d}"
        )
    if d > 31:
        raise ValueError(f"at most 31 dimensions fit a pair code, got {d}")
    codes = np.zeros((block.shape[0], data.shape[0]), dtype=np.int64)
    scratch = np.empty(codes.shape, dtype=np.int64)
    compared = np.empty(codes.shape, dtype=np.bool_)
    for k in range(d):
        column = data[:, k][None, :]
        reference = block[:, k][:, None]
        np.less_equal(column, reference, out=compared)
        np.multiply(compared, np.int64(1 << k), out=scratch)
        np.bitwise_or(codes, scratch, out=codes)
        np.equal(column, reference, out=compared)
        np.multiply(compared, np.int64(1 << (d + k)), out=scratch)
        np.bitwise_or(codes, scratch, out=codes)
    return codes


def rank_columns(rows: np.ndarray) -> np.ndarray:
    """Per-column dense ranks of ``rows``, in the smallest uint dtype.

    Each column is replaced by the index of its value in the column's
    sorted unique values, so ``<``, ``==`` and ``>`` between entries of
    the *same* column are preserved exactly (ties get equal ranks).
    Every dominance kernel in this module only ever compares within a
    column, which makes rank rows a drop-in, cache-friendlier stand-in
    for float rows: 2-byte (or 4-byte) lanes instead of 8-byte floats.
    NaNs are not supported (a NaN would be ranked, not incomparable).
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {rows.shape}")
    n, d = rows.shape
    dtype = np.uint16 if n <= 0xFFFF else np.uint32
    ranks = np.empty((n, d), dtype=dtype)
    for k in range(d):
        _, inverse = np.unique(rows[:, k], return_inverse=True)
        ranks[:, k] = np.asarray(inverse).ravel()
    return ranks


#: A column's equality pairs are enumerated from the rank index instead
#: of a dense ``==`` sweep while the expected pairs per block row
#: (``sum(count²) / n``) stay below this bound.
_SPARSE_EQ_LIMIT = 64


class PairCoder:
    """Comparison-code generator bound to one dataset.

    Emits the same ``le + (eq << d)`` codes as
    :func:`dominance_pair_codes` for blocks *cut from the bound rows*
    (``codes(start, end)`` is row slice ``[start, end)`` versus all
    rows), but an order of magnitude faster:

    * columns are rank-encoded once (:func:`rank_columns`), so the d
      accumulation sweeps compare small uints instead of floats;
    * only the ``le`` relation is swept densely.  Equal pairs are read
      off a per-column rank index (value → positions), which for
      mostly-distinct columns is a few thousand scattered ORs instead
      of a second ``len(block) × n`` sweep; columns with heavy value
      duplication fall back to the dense ``==`` sweep.

    The returned code array is an internal buffer reused by the next
    ``codes`` call — consume (or copy) it before calling again.
    """

    def __init__(self, rows: np.ndarray) -> None:
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty 2-D array, got shape {rows.shape}"
            )
        n, d = rows.shape
        if d > 16:
            raise ValueError(
                f"PairCoder packs codes into 32 bits (d <= 16), got d={d}"
            )
        self.n = n
        self.d = d
        self.code_dtype = np.uint16 if d <= 8 else np.uint32
        self._acc_dtype = np.uint8 if d <= 8 else np.uint16
        self.ranks = np.empty(
            (n, d), dtype=np.uint16 if n <= 0xFFFF else np.uint32
        )
        self._order = np.empty((n, d), dtype=np.intp)
        self._starts: List[np.ndarray] = []
        self._sparse_eq = np.empty(d, dtype=bool)
        for k in range(d):
            _, inverse, counts = np.unique(
                rows[:, k], return_inverse=True, return_counts=True
            )
            inverse = np.asarray(inverse).ravel()
            self.ranks[:, k] = inverse
            self._order[:, k] = np.argsort(inverse, kind="stable")
            self._starts.append(
                np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
            )
            squares = counts.astype(np.int64) ** 2
            self._sparse_eq[k] = int(squares.sum()) <= _SPARSE_EQ_LIMIT * n
        self._rows = 0
        self._le = np.empty((0, 0), dtype=self._acc_dtype)
        self._eq = np.empty((0, 0), dtype=self._acc_dtype)
        self._cmp = np.empty((0, 0), dtype=np.bool_)
        self._scratch = np.empty((0, 0), dtype=self._acc_dtype)
        self._codes = np.empty((0, 0), dtype=self.code_dtype)

    def _buffers(self, b: int) -> None:
        if b <= self._rows:
            return
        shape = (b, self.n)
        self._le = np.empty(shape, dtype=self._acc_dtype)
        self._eq = np.empty(shape, dtype=self._acc_dtype)
        self._cmp = np.empty(shape, dtype=np.bool_)
        self._scratch = np.empty(shape, dtype=self._acc_dtype)
        self._codes = np.empty(shape, dtype=self.code_dtype)
        self._rows = b

    def _equal_pairs(self, start: int, end: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """All ``(i, j)`` with ``rows[j, k] == rows[start + i, k]``."""
        starts = self._starts[k]
        r = self.ranks[start:end, k].astype(np.intp)
        lo, hi = starts[r], starts[r + 1]
        lengths = hi - lo
        total = int(lengths.sum())
        stops = np.cumsum(lengths)
        flat = (
            np.arange(total)
            - np.repeat(stops - lengths, lengths)
            + np.repeat(lo, lengths)
        )
        i_rep = np.repeat(np.arange(end - start), lengths)
        return i_rep, self._order[flat, k]

    def codes(self, start: int, end: int) -> np.ndarray:
        """``dominance_pair_codes(rows, rows[start:end])`` — fast form.

        Returns a ``(end - start, n)`` array of the coder's
        ``code_dtype`` (a reused internal buffer; see class docstring).
        """
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid block [{start}, {end}) over {self.n} rows"
            )
        b = end - start
        d = self.d
        self._buffers(b)
        acc = self._acc_dtype
        le = self._le[:b]
        eq = self._eq[:b]
        compared = self._cmp[:b]
        scratch = self._scratch[:b]
        codes = self._codes[:b]
        le.fill(0)
        eq.fill(0)
        for k in range(d):
            column = self.ranks[:, k][None, :]
            reference = self.ranks[start:end, k][:, None]
            np.less_equal(column, reference, out=compared)
            np.multiply(compared, acc(1 << k), out=scratch)
            np.bitwise_or(le, scratch, out=le)
            if self._sparse_eq[k]:
                i_rep, js = self._equal_pairs(start, end, k)
                # (i, j) pairs are distinct within one column, so the
                # fancy read-or-write needs no unbuffered ufunc.at.
                eq[i_rep, js] |= acc(1 << k)
            else:
                np.equal(column, reference, out=compared)
                np.multiply(compared, acc(1 << k), out=scratch)
                np.bitwise_or(eq, scratch, out=eq)
        np.multiply(eq, self.code_dtype(1 << d), out=codes)
        np.bitwise_or(codes, le, out=codes)
        return codes

    def codes_at(self, start: int, end: int, cols: np.ndarray) -> np.ndarray:
        """Codes of block ``[start, end)`` versus ``rows[cols]`` only.

        The column-subset form of :meth:`codes` for callers that have
        already pruned the candidate set (the packed engine's label
        filter): entry ``[i, j]`` relates ``rows[cols[j]]`` to
        ``rows[start + i]``.  Sweeps are dense over the gathered rank
        columns — with the candidate set already small, the sparse
        equal-rank path would cost more than it saves.  Returns a
        reused internal buffer view, like :meth:`codes`.
        """
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid block [{start}, {end}) over {self.n} rows"
            )
        cols = np.asarray(cols, dtype=np.intp)
        m = len(cols)
        if m == 0:
            return np.empty((end - start, 0), dtype=self.code_dtype)
        b = end - start
        d = self.d
        self._buffers(b)
        acc = self._acc_dtype
        le = self._le[:b, :m]
        eq = self._eq[:b, :m]
        compared = self._cmp[:b, :m]
        scratch = self._scratch[:b, :m]
        codes = self._codes[:b, :m]
        le.fill(0)
        eq.fill(0)
        gathered = self.ranks[cols]
        for k in range(d):
            column = gathered[:, k][None, :]
            reference = self.ranks[start:end, k][:, None]
            np.less_equal(column, reference, out=compared)
            np.multiply(compared, acc(1 << k), out=scratch)
            np.bitwise_or(le, scratch, out=le)
            np.equal(column, reference, out=compared)
            np.multiply(compared, acc(1 << k), out=scratch)
            np.bitwise_or(eq, scratch, out=eq)
        np.multiply(eq, self.code_dtype(1 << d), out=codes)
        np.bitwise_or(codes, le, out=codes)
        return codes


def dominance_matrix(
    block: np.ndarray, window: np.ndarray, strict: bool = False
) -> np.ndarray:
    """Pairwise Definition-1 matrix: ``[i, j]`` iff ``window[j] ≺ block[i]``.

    The unreduced form of :func:`dominated_mask`, for callers that need
    to know *which* row dominates (the sorted-filter kernels restrict
    dominators to earlier rows of the monotone order).  ``strict``
    selects the extended-skyline relation.  Peak memory is
    ``len(block) × len(window)`` booleans per intermediate.

    Accumulates the per-dimension comparisons one column at a time
    (``out &= window[:, k] < block[:, k]``) instead of reducing a
    ``× d`` broadcast tensor: every pass then streams over the long
    ``window`` axis contiguously, which vectorises several times
    better than ``np.all(..., axis=2)`` over a short trailing axis.
    """
    b, d = block.shape
    m = window.shape[0]
    out = np.ones((b, m), dtype=np.bool_)
    scratch = np.empty((b, m), dtype=np.bool_)
    if strict:
        for k in range(d):
            np.less(window[:, k][None, :], block[:, k][:, None], out=scratch)
            out &= scratch
        return out
    eq = np.ones((b, m), dtype=np.bool_)
    for k in range(d):
        column = window[:, k][None, :]
        reference = block[:, k][:, None]
        np.less_equal(column, reference, out=scratch)
        out &= scratch
        np.equal(column, reference, out=scratch)
        eq &= scratch
    np.logical_not(eq, out=eq)
    out &= eq
    return out


def dominated_mask(
    block: np.ndarray, window: np.ndarray, strict: bool = False
) -> np.ndarray:
    """Which rows of ``block`` are dominated by some row of ``window``.

    The vectorized block-vs-window form of Definition 1 that the
    uninstrumented kernels build on: entry ``i`` is True iff any row of
    ``window`` dominates ``block[i]`` (strictly, when ``strict`` — the
    extended-skyline relation drops only strictly dominated points).
    Both inputs are already projected onto the queried subspace; peak
    memory is ``len(block) × len(window)`` booleans.
    """
    return dominance_matrix(block, window, strict).any(axis=1)


def mask_test(pivot_le_p: int, pivot_le_q: int, delta: int) -> bool:
    """Equation 1 (Appendix B.2): can ``p`` possibly dominate ``q`` in δ?

    ``pivot_le_p`` is the partition bitmask of ``p`` (bit i set iff
    ``p[i] >= pivot[i]``) and likewise for ``q``.  A failed mask test
    proves non-dominance through transitivity with the pivot; a passing
    test is inconclusive and a DT is still required.
    """
    return ((pivot_le_q | ~pivot_le_p) & delta) == delta


class DominanceTester:
    """Stateful dominance tester bound to a dataset and a subspace.

    Bundles the dataset, the queried subspace and a counters sink so the
    algorithm code reads naturally (``tester.dominates(i, j)``) while
    every test is still accounted for.  This mirrors how the paper's
    specialisations keep the subspace projection inside the DT/MT rather
    than reshaping the data (Section 5.1).
    """

    def __init__(
        self,
        data: np.ndarray,
        delta: Optional[int] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.d = self.data.shape[1]
        self.delta = (1 << self.d) - 1 if delta is None else delta
        if not 0 < self.delta < (1 << self.d) + (1 << self.d):
            raise ValueError(f"invalid subspace mask {self.delta} for d={self.d}")
        self.counters = counters if counters is not None else Counters()
        self._delta_bits = bin(self.delta).count("1")

    def masks(self, i: int, j: int) -> Tuple[int, int, int]:
        """``(le, lt, eq)`` masks of point ``i`` versus point ``j``."""
        self.counters.dominance_tests += 1
        self.counters.values_loaded += 2 * self.d
        return comparison_masks(self.data[i], self.data[j])

    def dominates(self, i: int, j: int) -> bool:
        """True iff point ``i`` dominates point ``j`` in the bound δ."""
        self.counters.dominance_tests += 1
        self.counters.values_loaded += 2 * self._delta_bits
        le, _, eq = comparison_masks(self.data[i], self.data[j])
        return (le & self.delta) == self.delta and (eq & self.delta) != self.delta

    def strictly_dominates(self, i: int, j: int) -> bool:
        """True iff point ``i`` strictly dominates point ``j`` in δ."""
        self.counters.dominance_tests += 1
        self.counters.values_loaded += 2 * self._delta_bits
        _, lt, _ = comparison_masks(self.data[i], self.data[j])
        return (lt & self.delta) == self.delta

    def mask_test(self, pivot_le_p: int, pivot_le_q: int) -> bool:
        """Counted Equation-1 mask test in the bound subspace."""
        self.counters.mask_tests += 1
        self.counters.values_loaded += 2
        return mask_test(pivot_le_p, pivot_le_q, self.delta)
