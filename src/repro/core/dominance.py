"""Dominance tests and per-dimension comparison masks.

Smaller values are better throughout (the paper's WLOG convention).

Two flavours of comparison appear in every algorithm of the paper:

* **Dominance tests (DTs)** load up to ``|δ|`` coordinates of each point
  and evaluate Definition 1 directly.
* **Mask tests (MTs)** compare two points *transitively* through a common
  pivot using only their precomputed partition bitmasks (Equation 1,
  Appendix B.2) — one integer load instead of ``|δ|`` float loads.

This module implements both, plus the vectorized mask construction used
by the fast engine.  Optional :class:`~repro.instrument.counters.Counters`
objects record how many of each operation ran, which is what the hardware
cost model consumes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.instrument.counters import Counters

__all__ = [
    "comparison_masks",
    "dominates",
    "strictly_dominates",
    "dominance_masks_vs_all",
    "dominated_mask",
    "mask_test",
    "DominanceTester",
]


def comparison_masks(p: Sequence[float], q: Sequence[float]) -> Tuple[int, int, int]:
    """Per-dimension relation between ``p`` and ``q``.

    Returns ``(le, lt, eq)`` where bit ``i`` of ``le`` is set iff
    ``p[i] <= q[i]`` and analogously for ``lt`` and ``eq``.  These are the
    paper's ``B_{p<=q}``, ``B_{p<q}`` and ``B_{p=q}``.
    """
    le = lt = eq = 0
    for i, (pi, qi) in enumerate(zip(p, q)):
        bit = 1 << i
        if pi < qi:
            lt |= bit
            le |= bit
        elif pi == qi:
            eq |= bit
            le |= bit
    return le, lt, eq


def dominates(
    p: Sequence[float],
    q: Sequence[float],
    delta: int,
    counters: Optional[Counters] = None,
) -> bool:
    """Definition 1: ``p ≺δ q``.

    ``p`` dominates ``q`` in subspace ``delta`` iff ``p`` is no worse on
    every dimension of ``delta`` and strictly better on at least one.
    """
    if counters is not None:
        counters.dominance_tests += 1
        counters.values_loaded += 2 * bin(delta).count("1")
    le, _, eq = comparison_masks(p, q)
    return (le & delta) == delta and (eq & delta) != delta


def strictly_dominates(
    p: Sequence[float],
    q: Sequence[float],
    delta: int,
    counters: Optional[Counters] = None,
) -> bool:
    """Definition 1: ``p ≺≺δ q`` — strictly better on *every* dim of δ."""
    if counters is not None:
        counters.dominance_tests += 1
        counters.values_loaded += 2 * bin(delta).count("1")
    _, lt, _ = comparison_masks(p, q)
    return (lt & delta) == delta


def dominance_masks_vs_all(
    data: np.ndarray, p: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized ``comparison_masks`` of every row of ``data`` versus ``p``.

    Returns integer arrays ``(le, lt, eq)`` of shape ``(len(data),)`` where
    entry ``j`` encodes the relation of ``data[j]`` (as the left operand)
    to ``p``.  Dimensionality is limited to 63 so masks fit in int64,
    comfortably above the paper's maximum of 16.
    """
    d = data.shape[1]
    if d > 63:
        raise ValueError(f"at most 63 dimensions supported, got {d}")
    weights = (1 << np.arange(d, dtype=np.int64))
    lt = (data < p) @ weights
    eq = (data == p) @ weights
    return lt + eq, lt, eq


def dominated_mask(
    block: np.ndarray, window: np.ndarray, strict: bool = False
) -> np.ndarray:
    """Which rows of ``block`` are dominated by some row of ``window``.

    The vectorized block-vs-window form of Definition 1 that the
    uninstrumented kernels build on: entry ``i`` is True iff any row of
    ``window`` dominates ``block[i]`` (strictly, when ``strict`` — the
    extended-skyline relation drops only strictly dominated points).
    Both inputs are already projected onto the queried subspace; peak
    memory is ``len(block) × len(window)`` booleans.
    """
    if strict:
        lt = np.all(window[None, :, :] < block[:, None, :], axis=2)
        return lt.any(axis=1)
    le = np.all(window[None, :, :] <= block[:, None, :], axis=2)
    eq = np.all(window[None, :, :] == block[:, None, :], axis=2)
    return (le & ~eq).any(axis=1)


def mask_test(pivot_le_p: int, pivot_le_q: int, delta: int) -> bool:
    """Equation 1 (Appendix B.2): can ``p`` possibly dominate ``q`` in δ?

    ``pivot_le_p`` is the partition bitmask of ``p`` (bit i set iff
    ``p[i] >= pivot[i]``) and likewise for ``q``.  A failed mask test
    proves non-dominance through transitivity with the pivot; a passing
    test is inconclusive and a DT is still required.
    """
    return ((pivot_le_q | ~pivot_le_p) & delta) == delta


class DominanceTester:
    """Stateful dominance tester bound to a dataset and a subspace.

    Bundles the dataset, the queried subspace and a counters sink so the
    algorithm code reads naturally (``tester.dominates(i, j)``) while
    every test is still accounted for.  This mirrors how the paper's
    specialisations keep the subspace projection inside the DT/MT rather
    than reshaping the data (Section 5.1).
    """

    def __init__(
        self,
        data: np.ndarray,
        delta: Optional[int] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.d = self.data.shape[1]
        self.delta = (1 << self.d) - 1 if delta is None else delta
        if not 0 < self.delta < (1 << self.d) + (1 << self.d):
            raise ValueError(f"invalid subspace mask {self.delta} for d={self.d}")
        self.counters = counters if counters is not None else Counters()
        self._delta_bits = bin(self.delta).count("1")

    def masks(self, i: int, j: int) -> Tuple[int, int, int]:
        """``(le, lt, eq)`` masks of point ``i`` versus point ``j``."""
        self.counters.dominance_tests += 1
        self.counters.values_loaded += 2 * self.d
        return comparison_masks(self.data[i], self.data[j])

    def dominates(self, i: int, j: int) -> bool:
        """True iff point ``i`` dominates point ``j`` in the bound δ."""
        self.counters.dominance_tests += 1
        self.counters.values_loaded += 2 * self._delta_bits
        le, _, eq = comparison_masks(self.data[i], self.data[j])
        return (le & self.delta) == self.delta and (eq & self.delta) != self.delta

    def strictly_dominates(self, i: int, j: int) -> bool:
        """True iff point ``i`` strictly dominates point ``j`` in δ."""
        self.counters.dominance_tests += 1
        self.counters.values_loaded += 2 * self._delta_bits
        _, lt, _ = comparison_masks(self.data[i], self.data[j])
        return (lt & self.delta) == self.delta

    def mask_test(self, pivot_le_p: int, pivot_le_q: int) -> bool:
        """Counted Equation-1 mask test in the bound subspace."""
        self.counters.mask_tests += 1
        self.counters.values_loaded += 2
        return mask_test(pivot_le_p, pivot_le_q, self.delta)
