"""Subspace bitmask algebra.

A *subspace* of a ``d``-dimensional data space is any non-empty subset of
the dimensions.  Following Section 2.1 of the paper, a subspace is encoded
as an integer bitmask ``delta`` in which bit ``i`` is set iff dimension
``i`` participates.  The full space is ``(1 << d) - 1`` and the empty
subspace ``0`` is never a valid query.

This module collects the small, heavily reused pieces of bitmask algebra:
popcounts, submask/superset enumeration, lattice-level iteration, and
pretty-printing.  Everything operates on plain ints so the same helpers
serve subspace masks, per-dimension comparison masks (``B_{p<=q}``), and
per-subspace membership masks (``B_{p∈S}``).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

__all__ = [
    "popcount",
    "full_space",
    "parse_subspace",
    "is_valid_subspace",
    "is_subspace_of",
    "is_strict_subspace_of",
    "dims_of",
    "mask_from_dims",
    "all_subspaces",
    "subspaces_at_level",
    "levels_top_down",
    "submasks",
    "proper_submasks",
    "immediate_subspaces",
    "immediate_superspaces",
    "format_mask",
    "lattice_width",
]


def popcount(mask: int) -> int:
    """Number of set bits in ``mask`` (the paper's ``|δ|``)."""
    return bin(mask).count("1")


def full_space(d: int) -> int:
    """Bitmask of the full ``d``-dimensional space, ``2**d - 1``."""
    if d < 1:
        raise ValueError(f"dimensionality must be positive, got {d}")
    return (1 << d) - 1


def parse_subspace(text: str, d: int) -> int:
    """Parse a user-supplied subspace into a validated bitmask.

    Three spellings are accepted — the same ones everywhere a subspace
    crosses a text boundary (CLI arguments, serve requests):

    * binary literals: ``"0b101"`` (dimensions {0, 2});
    * plain integers: ``"5"`` (the mask value itself);
    * comma-separated dimension indices: ``"0,2"``.

    Raises :exc:`ValueError` for unparsable text, dimension indices
    outside ``[0, d)``, and masks outside ``(0, 2**d)`` — callers that
    exit (the CLI) or respond with a typed error (the serve router)
    wrap this one place instead of re-implementing the grammar.
    """
    text = text.strip()
    try:
        if text.startswith(("0b", "0B")):
            delta = int(text, 2)
        elif "," in text:
            dims = [int(part) for part in text.split(",")]
            for dim in dims:
                if not 0 <= dim < d:
                    raise ValueError(
                        f"dimension {dim} out of range for d={d}"
                    )
            delta = mask_from_dims(dims)
        else:
            delta = int(text)
    except ValueError as error:
        if "out of range" in str(error):
            raise
        raise ValueError(f"cannot parse subspace {text!r}") from None
    if not 0 < delta <= full_space(d):
        raise ValueError(f"subspace {text!r} out of range for d={d}")
    return delta


def is_valid_subspace(delta: int, d: int) -> bool:
    """True iff ``delta`` encodes a non-empty subspace of a d-dim space."""
    return 0 < delta <= full_space(d)


def is_subspace_of(inner: int, outer: int) -> bool:
    """True iff every dimension of ``inner`` is also in ``outer``."""
    return (inner & outer) == inner


def is_strict_subspace_of(inner: int, outer: int) -> bool:
    """True iff ``inner`` ⊂ ``outer`` (subspace and not equal)."""
    return inner != outer and (inner & outer) == inner


def dims_of(delta: int) -> List[int]:
    """The sorted list of dimension indices active in ``delta``."""
    dims = []
    i = 0
    while delta:
        if delta & 1:
            dims.append(i)
        delta >>= 1
        i += 1
    return dims


def mask_from_dims(dims: Sequence[int]) -> int:
    """Inverse of :func:`dims_of`: build a mask from dimension indices."""
    mask = 0
    for dim in dims:
        if dim < 0:
            raise ValueError(f"dimension indices must be non-negative, got {dim}")
        mask |= 1 << dim
    return mask


def all_subspaces(d: int) -> Iterator[int]:
    """All ``2**d - 1`` non-empty subspaces, in increasing mask order."""
    return iter(range(1, full_space(d) + 1))


def subspaces_at_level(d: int, level: int) -> List[int]:
    """All subspaces ``δ`` of a d-dim space with ``|δ| == level``.

    Uses Gosper's hack to enumerate same-popcount masks in increasing
    order, which keeps lattice levels deterministic across runs.
    """
    if not 1 <= level <= d:
        raise ValueError(f"level must be in [1, {d}], got {level}")
    result = []
    mask = (1 << level) - 1
    limit = 1 << d
    while mask < limit:
        result.append(mask)
        # Gosper's hack: next integer with the same popcount.
        lowest = mask & -mask
        ripple = mask + lowest
        mask = ripple | (((mask ^ ripple) >> 2) // lowest)
    return result


def levels_top_down(d: int) -> Iterator[Tuple[int, List[int]]]:
    """Yield ``(level, subspaces)`` from level ``d`` down to ``1``.

    This is the traversal order of the lattice-based templates
    (Algorithms 1 and 2): the full space first, then each thinner layer.
    """
    for level in range(d, 0, -1):
        yield level, subspaces_at_level(d, level)


def submasks(mask: int) -> Iterator[int]:
    """All non-empty submasks of ``mask``, in decreasing order.

    Standard ``sub = (sub - 1) & mask`` enumeration; visits each of the
    ``2**|mask| - 1`` non-empty submasks exactly once.
    """
    sub = mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def proper_submasks(mask: int) -> Iterator[int]:
    """All non-empty submasks of ``mask`` excluding ``mask`` itself."""
    sub = (mask - 1) & mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def immediate_subspaces(delta: int) -> List[int]:
    """The subspaces obtained by dropping exactly one dimension of δ."""
    children = []
    remaining = delta
    while remaining:
        bit = remaining & -remaining
        child = delta & ~bit
        if child:
            children.append(child)
        remaining ^= bit
    return children


def immediate_superspaces(delta: int, d: int) -> List[int]:
    """The subspaces obtained by adding exactly one dimension to δ."""
    parents = []
    for i in range(d):
        bit = 1 << i
        if not delta & bit:
            parents.append(delta | bit)
    return parents


def format_mask(mask: int, width: int) -> str:
    """Render ``mask`` as a fixed-width binary string, MSB first."""
    return format(mask, f"0{width}b")


def lattice_width(d: int) -> int:
    """Widest lattice layer of a d-dim skycube: ``C(d, d // 2)``."""
    import math

    return math.comb(d, d // 2)
