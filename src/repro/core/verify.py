"""Brute-force skycube oracle and verification helpers.

Everything optimised in this library is checked against these functions.
They make no attempt at efficiency beyond per-point vectorization and
directly realise the definitions of Section 2.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.bitmask import all_subspaces, full_space, popcount
from repro.core.dominance import dominance_masks_vs_all
from repro.core.lattice import Lattice
from repro.core.skycube import Skycube
from repro.core.skyline import skyline_indices

__all__ = [
    "brute_force_skycube",
    "brute_force_membership_masks",
    "verify_skycube",
]


def brute_force_skycube(
    data: np.ndarray, max_level: Optional[int] = None
) -> Skycube:
    """The exact skycube of ``data`` by direct evaluation of Definition 3.

    Computes all per-point comparison masks once and derives every
    cuboid from them, so it stays usable as a test oracle up to roughly
    ``n = 2000, d = 10``.
    """
    masks = brute_force_membership_masks(data)
    d = np.asarray(data).shape[1]
    lattice = Lattice(d)
    for delta in all_subspaces(d):
        if max_level is not None and popcount(delta) > max_level:
            continue
        bit = 1 << (delta - 1)
        lattice.set_cuboid(
            delta, [pid for pid, mask in masks.items() if not mask & bit]
        )
    return Skycube(lattice, data=np.asarray(data, dtype=np.float64), max_level=max_level)


def brute_force_membership_masks(data: np.ndarray) -> Dict[int, int]:
    """``{point_id: B_{p∉S}}`` for every point, by exhaustive comparison.

    Bit ``δ - 1`` of the mask is set iff the point is dominated in
    subspace ``δ``.  This is the quantity MDMC computes per parallel
    task, so the oracle doubles as its direct correctness reference.
    """
    data = np.asarray(data, dtype=np.float64)
    n, d = data.shape
    num_subspaces = full_space(d)
    masks: Dict[int, int] = {}
    for j in range(n):
        le, _, eq = dominance_masks_vs_all(data, data[j])
        not_in = 0
        # Distinct (le, eq) pairs repeat heavily; deduplicate before the
        # exponential subspace sweep.
        seen = set(zip(le.tolist(), eq.tolist()))
        for delta in range(1, num_subspaces + 1):
            for le_mask, eq_mask in seen:
                if (le_mask & delta) == delta and (eq_mask & delta) != delta:
                    not_in |= 1 << (delta - 1)
                    break
        masks[j] = not_in
    return masks


def verify_skycube(
    skycube: Skycube, data: np.ndarray, sample_subspaces: Optional[int] = None
) -> List[str]:
    """Compare a skycube against per-subspace naive skylines.

    Returns a list of human-readable mismatch descriptions (empty means
    verified).  ``sample_subspaces`` caps the number of subspaces checked
    (evenly spread) for large d.
    """
    data = np.asarray(data, dtype=np.float64)
    d = data.shape[1]
    subspaces = list(skycube.subspaces())
    if sample_subspaces is not None and sample_subspaces < len(subspaces):
        step = len(subspaces) / sample_subspaces
        subspaces = [subspaces[int(i * step)] for i in range(sample_subspaces)]
    problems = []
    for delta in subspaces:
        expected = tuple(skyline_indices(data, delta))
        actual = skycube.skyline(delta)
        if expected != actual:
            missing = set(expected) - set(actual)
            spurious = set(actual) - set(expected)
            problems.append(
                f"δ={delta:#b}: missing={sorted(missing)} spurious={sorted(spurious)}"
            )
    return problems
