"""Reference skyline and extended-skyline operators.

These are the straightforward O(n²) implementations of Definition 2,
used as the correctness oracle for every optimised algorithm in the
library and as the building block of the brute-force skycube in
:mod:`repro.core.verify`.  They favour clarity over speed; the fast
paths live in :mod:`repro.engine` and :mod:`repro.skyline`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.bitmask import full_space
from repro.core.dominance import dominance_masks_vs_all
from repro.instrument.counters import Counters

__all__ = [
    "skyline_indices",
    "extended_skyline_indices",
    "skyline_and_extended",
]


def _validate(data: np.ndarray, delta: Optional[int]) -> Tuple[np.ndarray, int]:
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D (points x dims), got shape {data.shape}")
    d = data.shape[1]
    if delta is None:
        delta = full_space(d)
    if not 0 < delta <= full_space(d):
        raise ValueError(f"invalid subspace {delta} for d={d}")
    return data, delta


def skyline_indices(
    data: np.ndarray,
    delta: Optional[int] = None,
    counters: Optional[Counters] = None,
) -> List[int]:
    """Point ids of ``S_δ(data)`` (Definition 2), sorted ascending.

    A point survives iff no *distinct* point is at least as good on every
    dimension of δ and strictly better on one.  Vectorized per candidate:
    one pass of mask construction against the whole dataset.
    """
    data, delta = _validate(data, delta)
    n = len(data)
    result = []
    for j in range(n):
        le, _, eq = dominance_masks_vs_all(data, data[j])
        if counters is not None:
            counters.dominance_tests += n
        dominated = ((le & delta) == delta) & ((eq & delta) != delta)
        if not dominated.any():
            result.append(j)
    return result


def extended_skyline_indices(
    data: np.ndarray,
    delta: Optional[int] = None,
    counters: Optional[Counters] = None,
) -> List[int]:
    """Point ids of the extended skyline ``S+_δ(data)`` (Definition 2).

    A point survives unless some other point is *strictly* better on
    every dimension of δ.  The extended skyline of δ contains the
    (extended) skylines of every subspace of δ, which is what makes the
    top-down lattice traversal sound.
    """
    data, delta = _validate(data, delta)
    n = len(data)
    result = []
    for j in range(n):
        _, lt, _ = dominance_masks_vs_all(data, data[j])
        if counters is not None:
            counters.dominance_tests += n
        strictly_dominated = (lt & delta) == delta
        if not strictly_dominated.any():
            result.append(j)
    return result


def skyline_and_extended(
    data: np.ndarray,
    delta: Optional[int] = None,
    counters: Optional[Counters] = None,
) -> Tuple[List[int], List[int]]:
    """``(S_δ, S+_δ \\ S_δ)`` in one pass — the pair the lattices store.

    Algorithms 1 and 2 keep, per cuboid, the skyline ``L[δ]`` and the
    extra extended-skyline points ``L+[δ]`` separately; this helper
    produces exactly those two disjoint id lists.
    """
    data, delta = _validate(data, delta)
    n = len(data)
    sky: List[int] = []
    extended_only: List[int] = []
    for j in range(n):
        le, lt, eq = dominance_masks_vs_all(data, data[j])
        if counters is not None:
            counters.dominance_tests += n
        if ((lt & delta) == delta).any():
            continue  # strictly dominated: in neither set
        dominated = ((le & delta) == delta) & ((eq & delta) != delta)
        if dominated.any():
            extended_only.append(j)
        else:
            sky.append(j)
    return sky, extended_only
