"""Online skycube maintenance under point insertions and deletions.

The compressed-skycube line of work (Xia & Zhang, Section 3) exists
because applications need the materialised skycube to track a changing
dataset.  The HashCube's per-point definition makes *insertion* cheap:
a new point only (a) needs its own ``B_{p∉S}`` computed — one pass over
the current points — and (b) can only *add* dominated-bits to existing
points' masks, each derivable from one comparison-mask pair via the
shared closure cache.

Deletion is the hard direction (a point dominated only by the removed
point silently regains membership, and masks carry no provenance), so
it falls back to recomputing the affected masks — the same asymmetry
the update literature documents.  :class:`SkycubeMaintainer` keeps the
masks exact at every step; `skycube()` materialises the current state
as a HashCube-backed :class:`~repro.core.skycube.Skycube`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitmask import full_space
from repro.core.closures import SubspaceClosures
from repro.core.hashcube import HashCube
from repro.core.skycube import Skycube
from repro.instrument.counters import Counters

__all__ = ["SkycubeMaintainer"]


class SkycubeMaintainer:
    """Exact per-point non-membership masks under inserts/deletes."""

    def __init__(
        self,
        data: Optional[np.ndarray] = None,
        d: Optional[int] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        if data is None and d is None:
            raise ValueError("provide initial data or a dimensionality")
        if data is not None:
            data = np.asarray(data, dtype=np.float64)
            if data.ndim != 2:
                raise ValueError(f"data must be 2-D, got shape {data.shape}")
            if np.isnan(data).any():
                raise ValueError("data contains NaN")
            if d is not None and d != data.shape[1]:
                raise ValueError(f"d={d} conflicts with data shape {data.shape}")
            d = data.shape[1]
        self.d = d
        self.counters = counters if counters is not None else Counters()
        self._closures = SubspaceClosures(d)
        self._weights = (1 << np.arange(d, dtype=np.int64))
        self._rows: List[np.ndarray] = []
        self._ids: List[int] = []
        self._masks: Dict[int, int] = {}
        self._next_id = 0
        if data is not None and len(data):
            self._bulk_load(data)

    def _bulk_load(self, data: np.ndarray) -> None:
        """Seed the maintainer from a full dataset in one pass.

        Inserting row by row is O(n^2) array re-stacking — tens of
        seconds at serving sizes.  Instead: points outside the extended
        skyline ``S+`` are strictly dominated on every dimension by
        some point, hence in no subspace skyline — their mask is fully
        set.  Exact masks are computed only for the (typically small)
        ``S+``, and comparing within ``S+`` suffices because every
        dominator is itself dominated by an ``S+`` point.
        """
        # Local import: repro.engine builds on repro.core, so the
        # kernels cannot be imported at module load without a cycle.
        from repro.core.dominance import dominance_masks_vs_all
        from repro.engine.kernels import fast_extended_skyline

        self._rows = [np.array(row) for row in data]
        self._ids = list(range(len(data)))
        self._next_id = len(data)
        full_mask = (1 << full_space(self.d)) - 1
        self._masks = {pid: full_mask for pid in self._ids}
        splus = fast_extended_skyline(data)
        rows = data[splus]
        for j, pid in enumerate(splus.tolist()):
            le, _, eq = dominance_masks_vs_all(rows, rows[j])
            self.counters.dominance_tests += len(rows)
            self._masks[pid] = self._fold_pairs(le, eq)

    # -- updates --------------------------------------------------------

    def insert(self, point: Sequence[float]) -> int:
        """Add a point; returns its assigned id.  O(n) mask updates."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.d,):
            raise ValueError(f"expected a {self.d}-dim point, got {point.shape}")
        if np.isnan(point).any():
            raise ValueError("point contains NaN")
        point_id = self._next_id
        self._next_id += 1

        if self._rows:
            existing = np.asarray(self._rows)
            # Existing points as potential dominators of the new one...
            lt = (existing < point) @ self._weights
            eq = (existing == point) @ self._weights
            self.counters.dominance_tests += len(existing)
            self._masks[point_id] = self._fold_pairs(lt + eq, eq)
            # ...and the new point as a dominator of existing ones.
            gt = (existing > point) @ self._weights
            ge = gt + eq
            self.counters.dominance_tests += len(existing)
            for existing_id, ge_mask, eq_mask in zip(
                self._ids, ge.tolist(), eq.tolist()
            ):
                if ge_mask:
                    self._masks[existing_id] |= self._closures.dominated_update(
                        ge_mask, eq_mask
                    )
                    self.counters.bitmask_ops += 1
        else:
            self._masks[point_id] = 0

        self._rows.append(point)
        self._ids.append(point_id)
        return point_id

    def delete(self, point_id: int) -> None:
        """Remove a point; recomputes the masks it may have shaped.

        A random point strictly beats most others somewhere, so the
        affected set is usually ~n and a naive per-point recompute
        (re-stacking the row list each time) is O(n^2) array copies —
        seconds at n=5000, which stalls live serving.  Instead the row
        matrix is built once and affected points are recomputed in
        broadcast chunks.
        """
        try:
            index = self._ids.index(point_id)
        except ValueError:
            raise KeyError(f"unknown point id {point_id}") from None
        removed = self._rows.pop(index)
        self._ids.pop(index)
        self._masks.pop(point_id)
        if not self._rows:
            return
        existing = np.asarray(self._rows)
        # The removed point contributed dominated-bits to any point it
        # strictly beat on at least one dimension; recompute exactly
        # those masks from scratch.
        positions = np.flatnonzero((existing > removed).any(axis=1))
        chunk = max(1, (1 << 21) // (len(existing) * self.d))
        for start in range(0, len(positions), chunk):
            block = positions[start:start + chunk]
            points = existing[block]  # rows under recompute, chunk x d
            lt = (existing[None, :, :] < points[:, None, :]) @ self._weights
            eq = (existing[None, :, :] == points[:, None, :]) @ self._weights
            le = lt + eq
            self.counters.dominance_tests += le.size
            for row, le_row, eq_row in zip(block.tolist(), le, eq):
                self._masks[self._ids[row]] = self._fold_pairs(le_row, eq_row)

    def _recompute_mask(self, point_id: int) -> int:
        index = self._ids.index(point_id)
        point = self._rows[index]
        existing = np.asarray(self._rows)
        lt = (existing < point) @ self._weights
        eq = (existing == point) @ self._weights
        self.counters.dominance_tests += len(existing)
        return self._fold_pairs(lt + eq, eq)

    def _fold_pairs(self, le: np.ndarray, eq: np.ndarray) -> int:
        """OR the closure contributions of the distinct (le, eq) pairs.

        Encoding the pair into one integer lets ``np.unique`` do the
        dedup in C; the closure cache then sees each pair once.
        """
        pairs: Iterable[Tuple[int, int]]
        if 2 * self.d < 63:
            pair_mask = (1 << self.d) - 1
            pairs = (
                (combined >> self.d, combined & pair_mask)
                for combined in np.unique((le << self.d) | eq).tolist()
            )
        else:  # packing would overflow int64; dedup in python instead
            pairs = set(zip(le.tolist(), eq.tolist()))
        mask = 0
        for le_mask, eq_mask in pairs:
            if le_mask:
                mask |= self._closures.dominated_update(le_mask, eq_mask)
                self.counters.bitmask_ops += 1
        return mask

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def membership_mask(self, point_id: int) -> int:
        """Current exact ``B_{p∉S}`` of a live point."""
        return self._masks[point_id]

    def point(self, point_id: int) -> np.ndarray:
        """The coordinates of a live point (copy)."""
        try:
            index = self._ids.index(point_id)
        except ValueError:
            raise KeyError(f"unknown point id {point_id}") from None
        return self._rows[index].copy()

    def points(self) -> "Dict[int, np.ndarray]":
        """``{id: coordinates}`` of every live point."""
        return {
            pid: row.copy() for pid, row in zip(self._ids, self._rows)
        }

    def skyline(self, delta: int) -> List[int]:
        """Current ``S_δ`` ids without materialising the whole cube."""
        if not 0 < delta <= full_space(self.d):
            raise KeyError(f"invalid subspace {delta} for d={self.d}")
        bit = 1 << (delta - 1)
        return sorted(
            pid for pid, mask in self._masks.items() if not mask & bit
        )

    def skycube(self, word_width: int = HashCube.DEFAULT_WORD_WIDTH) -> Skycube:
        """Materialise the current state as a HashCube-backed skycube."""
        cube = HashCube(self.d, word_width)
        for pid in sorted(self._masks):
            cube.insert(pid, self._masks[pid])
        # Ids are stable across deletions and need not be dense, so no
        # row array is attached (point lookups go through the caller).
        return Skycube(cube)
