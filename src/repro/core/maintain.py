"""Online skycube maintenance under point insertions and deletions.

The compressed-skycube line of work (Xia & Zhang, Section 3) exists
because applications need the materialised skycube to track a changing
dataset.  The HashCube's per-point definition makes *insertion* cheap:
a new point only (a) needs its own ``B_{p∉S}`` computed — one pass over
the current points — and (b) can only *add* dominated-bits to existing
points' masks, each derivable from one comparison-mask pair via the
shared closure cache.

Deletion is the hard direction (a point dominated only by the removed
point silently regains membership, and masks carry no provenance), so
it recomputes the affected masks — the same asymmetry the update
literature documents.

For ``d <= PACKED_MAX_D`` the maintainer stores state in the packed
uint64 representation of :mod:`repro.engine.packed` — a capacity-
doubling coordinate matrix, one ``(n, words)`` mask-row array, and a
liveness bitmap — and mutations become *delta sweeps*
(:mod:`repro.engine.delta`): a static-tree prefilter bounds the
affected set without touching coordinates, a single vectorised
comparison prunes it exactly, and only the affected rows' closure
contributions are folded.  :meth:`insert_with_delta` and
:meth:`delete_with_delta` additionally report the exact mask movement
(:class:`MaskDelta`) so downstream consumers — copy-on-write
``HashCube.with_updates`` publishes, per-version changelogs — can
update in O(affected) instead of O(n).  Beyond ``PACKED_MAX_D`` the
original list/dict big-int path is kept as a correctness fallback.

:class:`SkycubeMaintainer` keeps the masks exact at every step;
`skycube()` materialises the current state as a HashCube-backed
:class:`~repro.core.skycube.Skycube`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.bitmask import full_space
from repro.core.closures import SubspaceClosures
from repro.core.hashcube import HashCube
from repro.core.skycube import Skycube
from repro.instrument.counters import Counters

if TYPE_CHECKING:
    from repro.engine.delta import DeltaIndex

__all__ = ["SkycubeMaintainer", "MaskDelta"]

#: Initial row capacity of the packed storage arrays.
_MIN_CAPACITY = 16


@dataclass(frozen=True)
class MaskDelta:
    """The exact ``B_{p∉S}`` movement of one mutation.

    ``changed`` maps point id → its *new* mask for every point whose
    mask differs after the mutation (the inserted point included);
    ``removed`` lists ids that left the dataset; ``previous`` maps
    every changed existing id and every removed id to its mask *before*
    the mutation.  Together these are sufficient to replay the mutation
    onto any downstream copy of the masks — a copy-on-write
    :meth:`repro.core.hashcube.HashCube.with_updates` publish, or a
    per-version ``(entered, left)`` changelog — without a rescan.
    """

    changed: Dict[int, int] = field(default_factory=dict)
    removed: Tuple[int, ...] = ()
    previous: Dict[int, int] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not self.changed and not self.removed


class SkycubeMaintainer:
    """Exact per-point non-membership masks under inserts/deletes."""

    def __init__(
        self,
        data: Optional[np.ndarray] = None,
        d: Optional[int] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        if data is None and d is None:
            raise ValueError("provide initial data or a dimensionality")
        if data is not None:
            data = np.asarray(data, dtype=np.float64)
            if data.ndim != 2:
                raise ValueError(f"data must be 2-D, got shape {data.shape}")
            if np.isnan(data).any():
                raise ValueError("data contains NaN")
            if d is not None and d != data.shape[1]:
                raise ValueError(f"d={d} conflicts with data shape {data.shape}")
            d = data.shape[1]
        # Local import: repro.engine builds on repro.core, so the
        # kernels cannot be imported at module load without a cycle.
        from repro.engine.packed import PACKED_MAX_D, closure_table, words_for

        self.d = d
        self.counters = counters if counters is not None else Counters()
        self._closures = SubspaceClosures(d)
        self._weights = (1 << np.arange(d, dtype=np.int64))
        self._next_id = 0
        self._packed = d <= PACKED_MAX_D
        if self._packed:
            self._table = closure_table(d)
            self._words = words_for(d)
            cap = _MIN_CAPACITY if data is None else max(
                _MIN_CAPACITY, len(data)
            )
            self._matrix = np.zeros((cap, d), dtype=np.float64)
            self._mask_rows = np.zeros((cap, self._words), dtype=np.uint64)
            self._row_ids = np.zeros(cap, dtype=np.int64)
            self._live = np.zeros(cap, dtype=bool)
            self._count = 0
            self._n_live = 0
            self._pos: Dict[int, int] = {}
            # Affected-point prefilter, built lazily past min size.
            self._index: Optional["DeltaIndex"] = None
        else:  # big-int fallback beyond the packed engine's reach
            self._rows: List[np.ndarray] = []
            self._ids: List[int] = []
            self._masks: Dict[int, int] = {}
        if data is not None and len(data):
            self._bulk_load(data)

    # -- bulk load ------------------------------------------------------

    def _bulk_load(self, data: np.ndarray) -> None:
        """Seed the maintainer from a full dataset in one pass.

        Inserting row by row is O(n^2) array re-stacking — tens of
        seconds at serving sizes.  Instead: points outside the extended
        skyline ``S+`` are strictly dominated on every dimension by
        some point, hence in no subspace skyline — their mask is fully
        set.  Exact masks are computed only for the (typically small)
        ``S+``, and comparing within ``S+`` suffices because every
        dominator is itself dominated by an ``S+`` point.
        """
        from repro.engine.kernels import fast_extended_skyline

        if self._packed:
            from repro.engine.packed import packed_point_masks, relevant_row

            n = len(data)
            self._ensure_room(n)
            self._matrix[:n] = data
            self._row_ids[:n] = np.arange(n)
            self._live[:n] = True
            self._count = n
            self._n_live = n
            self._pos = {i: i for i in range(n)}
            self._next_id = n
            self._mask_rows[:n] = relevant_row(self.d, None)
            splus = fast_extended_skyline(data)
            self._mask_rows[splus] = packed_point_masks(
                data[splus], table=self._table
            )
            self.counters.dominance_tests += len(splus) * len(splus)
            self._maintain_structures()
            return

        from repro.core.dominance import dominance_masks_vs_all

        self._rows = [np.array(row) for row in data]
        self._ids = list(range(len(data)))
        self._next_id = len(data)
        full_mask = (1 << full_space(self.d)) - 1
        self._masks = {pid: full_mask for pid in self._ids}
        splus = fast_extended_skyline(data)
        rows = data[splus]
        for j, pid in enumerate(splus.tolist()):
            le, _, eq = dominance_masks_vs_all(rows, rows[j])
            self.counters.dominance_tests += len(rows)
            self._masks[pid] = self._fold_pairs(le, eq)

    # -- packed storage -------------------------------------------------

    def _ensure_room(self, extra: int) -> None:
        needed = self._count + extra
        cap = len(self._matrix)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        for name in ("_matrix", "_mask_rows", "_row_ids", "_live"):
            old = getattr(self, name)
            grown = np.zeros((cap,) + old.shape[1:], dtype=old.dtype)
            grown[: self._count] = old[: self._count]
            setattr(self, name, grown)

    def _append_row(
        self, point_id: int, point: np.ndarray, mask_row: np.ndarray
    ) -> int:
        self._ensure_room(1)
        row = self._count
        self._matrix[row] = point
        self._mask_rows[row] = mask_row
        self._row_ids[row] = point_id
        self._live[row] = True
        self._pos[point_id] = row
        self._count += 1
        self._n_live += 1
        return row

    def _compact_storage(self) -> None:
        """Drop dead rows so sweeps and the index stay O(live)."""
        live = np.flatnonzero(self._live[: self._count])
        n = len(live)
        self._matrix[:n] = self._matrix[live]
        self._mask_rows[:n] = self._mask_rows[live]
        self._row_ids[:n] = self._row_ids[live]
        self._live[: self._count] = False
        self._live[:n] = True
        self._count = n
        self._pos = {
            int(pid): row for row, pid in enumerate(self._row_ids[:n])
        }
        self._index = None

    def _maintain_structures(self) -> None:
        """Amortised upkeep after a mutation: compaction + prefilter.

        Dead rows are compacted away once they outnumber the live set;
        the :class:`~repro.engine.delta.DeltaIndex` prefilter is
        (re)built once the live set is large enough to pay for a tree
        and whenever its unindexed tail has grown past the pruning-
        usefulness threshold.  Both costs are O(n log n) but amortise
        over the >= O(n) mutations that triggered them.
        """
        from repro.engine.delta import INDEX_MIN_ROWS, DeltaIndex

        dead = self._count - self._n_live
        if dead > max(64, self._n_live):
            self._compact_storage()
        if self._n_live < INDEX_MIN_ROWS:
            self._index = None
            return
        if self._index is None or self._index.stale():
            live = np.flatnonzero(self._live[: self._count])
            self._index = DeltaIndex(self._matrix[: self._count], live)

    def _live_rows(self) -> np.ndarray:
        return np.flatnonzero(self._live[: self._count])

    def _victim_rows(self, point: np.ndarray) -> np.ndarray:
        """Live rows the mutation point may strictly beat somewhere."""
        if self._index is not None:
            cand = self._index.candidates(point)
            return cand[self._live[cand]]
        return self._live_rows()

    def _dominator_rows(self, point: np.ndarray) -> np.ndarray:
        """Live rows that may contribute to the point's own mask."""
        if self._index is not None:
            cand = self._index.dominator_candidates(point)
            return cand[self._live[cand]]
        return self._live_rows()

    # -- updates --------------------------------------------------------

    def _check_point(self, point: Sequence[float]) -> np.ndarray:
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.d,):
            raise ValueError(f"expected a {self.d}-dim point, got {point.shape}")
        if np.isnan(point).any():
            raise ValueError("point contains NaN")
        return point

    def insert(self, point: Sequence[float]) -> int:
        """Add a point; returns its assigned id.  O(affected) updates."""
        return self.insert_with_delta(point)[0]

    def delete(self, point_id: int) -> None:
        """Remove a point; recomputes the masks it may have shaped."""
        self.delete_with_delta(point_id)

    def insert_with_delta(
        self, point: Sequence[float]
    ) -> Tuple[int, MaskDelta]:
        """:meth:`insert` plus the exact mask movement it caused.

        The packed delta sweep: the new point's own ``B_{p∉S}`` folds
        the comparison codes of the (prefiltered) potential dominators;
        existing masks gain only the closure contribution of the one
        new row against the (prefiltered, then exactly-checked)
        affected set — never a full recompute.
        """
        point = self._check_point(point)
        if not self._packed:
            return self._insert_legacy(point)
        from repro.engine.delta import contribution_rows, fold_codes
        from repro.engine.packed import row_to_int

        point_id = self._next_id
        self._next_id += 1
        if self._n_live == 0:
            own = np.zeros(self._words, dtype=np.uint64)
            self._append_row(point_id, point, own)
            self._maintain_structures()
            return point_id, MaskDelta(changed={point_id: 0})

        weights = self._weights
        # The new point's own mask: fold everyone who may dominate it.
        dominators = self._dominator_rows(point)
        own = np.zeros(self._words, dtype=np.uint64)
        if len(dominators):
            block = self._matrix[dominators]
            lt = (block < point) @ weights
            eq = (block == point) @ weights
            own = fold_codes(
                (lt + eq) | (eq << self.d), self.d, self._table
            )
            self.counters.dominance_tests += len(dominators)

        # ...and its contribution to the points it strictly beats.
        # Coverage fast path: when some live point ``p <= point`` on
        # every dimension, ``p``'s closure contribution to any victim
        # is a superset of the new point's (componentwise-larger ``le``,
        # and ``p`` is strictly better wherever the new point is), so
        # every bit the new point could set is already set — the whole
        # victim sweep is provably a no-op.
        full_le = int(weights.sum())
        covered = bool(
            len(dominators) and ((lt + eq) == full_le).any()
        )
        changed: Dict[int, int] = {}
        previous: Dict[int, int] = {}
        candidates = (
            np.empty(0, dtype=np.intp) if covered
            else self._victim_rows(point)
        )
        if len(candidates):
            block = self._matrix[candidates]
            beaten = (block > point).any(axis=1)
            self.counters.dominance_tests += len(candidates)
            victims = candidates[beaten]
            if len(victims):
                rows = block[beaten]
                ge = (rows >= point) @ weights
                eqv = (rows == point) @ weights
                add = contribution_rows(ge, eqv, self.d, self._table)
                old = self._mask_rows[victims]
                new = old | add
                moved = (new != old).any(axis=1)
                if moved.any():
                    touched = victims[moved]
                    self._mask_rows[touched] = new[moved]
                    self.counters.bitmask_ops += int(moved.sum())
                    for row, before, after in zip(
                        touched.tolist(), old[moved], new[moved]
                    ):
                        pid = int(self._row_ids[row])
                        previous[pid] = row_to_int(before)
                        changed[pid] = row_to_int(after)

        row = self._append_row(point_id, point, own)
        changed[point_id] = row_to_int(own)
        if self._index is not None:
            self._index.add(row)
        self._maintain_structures()
        return point_id, MaskDelta(changed, (), previous)

    def delete_with_delta(self, point_id: int) -> MaskDelta:
        """:meth:`delete` plus the exact mask movement it caused.

        The affected set — points the removed row strictly beat
        somewhere — is bounded by the prefilter and pinned down by one
        vectorised comparison; only those masks are re-derived, via a
        :class:`~repro.engine.packed.PackedSweep` over the affected
        block reordered to the front of the survivors.
        """
        if not self._packed:
            return self._delete_legacy(point_id)
        from repro.engine.delta import recompute_rows
        from repro.engine.packed import row_to_int

        row = self._pos.pop(point_id, None)
        if row is None:
            raise KeyError(f"unknown point id {point_id}")
        removed_point = self._matrix[row].copy()
        removed_mask = row_to_int(self._mask_rows[row])
        self._live[row] = False
        self._n_live -= 1

        changed: Dict[int, int] = {}
        previous: Dict[int, int] = {point_id: removed_mask}
        if self._n_live == 0:
            self._index = None
            return MaskDelta(changed, (point_id,), previous)

        # Coverage fast path: a surviving point ``p <= removed`` on
        # every dimension (an exact duplicate counts, and the removed
        # row itself is already marked dead) contributes a superset of
        # the removed point's bits to every victim — on each dimension
        # where the removed point strictly beat a victim, ``p`` still
        # does.  No surviving mask can change, so the O(affected x n)
        # recompute sweep is provably a no-op.
        coverers = self._dominator_rows(removed_point)
        if len(coverers):
            self.counters.dominance_tests += len(coverers)
            if (self._matrix[coverers] <= removed_point).all(axis=1).any():
                self._maintain_structures()
                return MaskDelta(changed, (point_id,), previous)

        candidates = self._victim_rows(removed_point)
        if len(candidates):
            beaten = (self._matrix[candidates] > removed_point).any(axis=1)
            self.counters.dominance_tests += len(candidates)
            victims = candidates[beaten]
            if len(victims):
                rest_live = self._live[: self._count].copy()
                rest_live[victims] = False
                rest = np.flatnonzero(rest_live)
                new = recompute_rows(
                    self._matrix, victims, rest, table=self._table
                )
                self.counters.dominance_tests += len(victims) * self._n_live
                old = self._mask_rows[victims]
                moved = (new != old).any(axis=1)
                if moved.any():
                    touched = victims[moved]
                    self._mask_rows[touched] = new[moved]
                    self.counters.bitmask_ops += int(moved.sum())
                    for vrow, before, after in zip(
                        touched.tolist(), old[moved], new[moved]
                    ):
                        pid = int(self._row_ids[vrow])
                        previous[pid] = row_to_int(before)
                        changed[pid] = row_to_int(after)
        self._maintain_structures()
        return MaskDelta(changed, (point_id,), previous)

    # -- legacy (d > PACKED_MAX_D) update paths -------------------------

    def _insert_legacy(self, point: np.ndarray) -> Tuple[int, MaskDelta]:
        point_id = self._next_id
        self._next_id += 1
        changed: Dict[int, int] = {}
        previous: Dict[int, int] = {}

        if self._rows:
            existing = np.asarray(self._rows)
            # Existing points as potential dominators of the new one...
            lt = (existing < point) @ self._weights
            eq = (existing == point) @ self._weights
            self.counters.dominance_tests += len(existing)
            self._masks[point_id] = self._fold_pairs(lt + eq, eq)
            # ...and the new point as a dominator of existing ones.
            gt = (existing > point) @ self._weights
            ge = gt + eq
            self.counters.dominance_tests += len(existing)
            for existing_id, ge_mask, eq_mask in zip(
                self._ids, ge.tolist(), eq.tolist()
            ):
                if ge_mask:
                    before = self._masks[existing_id]
                    after = before | self._closures.dominated_update(
                        ge_mask, eq_mask
                    )
                    self.counters.bitmask_ops += 1
                    if after != before:
                        previous[existing_id] = before
                        changed[existing_id] = after
                        self._masks[existing_id] = after
        else:
            self._masks[point_id] = 0

        self._rows.append(point)
        self._ids.append(point_id)
        changed[point_id] = self._masks[point_id]
        return point_id, MaskDelta(changed, (), previous)

    def _delete_legacy(self, point_id: int) -> MaskDelta:
        try:
            index = self._ids.index(point_id)
        except ValueError:
            raise KeyError(f"unknown point id {point_id}") from None
        removed = self._rows.pop(index)
        self._ids.pop(index)
        changed: Dict[int, int] = {}
        previous: Dict[int, int] = {point_id: self._masks.pop(point_id)}
        if not self._rows:
            return MaskDelta(changed, (point_id,), previous)
        existing = np.asarray(self._rows)
        # The removed point contributed dominated-bits to any point it
        # strictly beat on at least one dimension; recompute exactly
        # those masks from scratch, in broadcast chunks.
        positions = np.flatnonzero((existing > removed).any(axis=1))
        chunk = max(1, (1 << 21) // (len(existing) * self.d))
        for start in range(0, len(positions), chunk):
            block = positions[start:start + chunk]
            points = existing[block]  # rows under recompute, chunk x d
            lt = (existing[None, :, :] < points[:, None, :]) @ self._weights
            eq = (existing[None, :, :] == points[:, None, :]) @ self._weights
            le = lt + eq
            self.counters.dominance_tests += le.size
            for row, le_row, eq_row in zip(block.tolist(), le, eq):
                pid = self._ids[row]
                before = self._masks[pid]
                after = self._fold_pairs(le_row, eq_row)
                if after != before:
                    previous[pid] = before
                    changed[pid] = after
                    self._masks[pid] = after
        return MaskDelta(changed, (point_id,), previous)

    def _recompute_mask(self, point_id: int) -> int:
        if self._packed:
            return self._packed_mask_of(self._pos[point_id], exact=True)
        index = self._ids.index(point_id)
        point = self._rows[index]
        existing = np.asarray(self._rows)
        lt = (existing < point) @ self._weights
        eq = (existing == point) @ self._weights
        self.counters.dominance_tests += len(existing)
        return self._fold_pairs(lt + eq, eq)

    def _packed_mask_of(self, row: int, exact: bool = False) -> int:
        """Stored (or, for audits, freshly re-derived) mask of a row."""
        from repro.engine.delta import fold_codes
        from repro.engine.packed import row_to_int

        if not exact:
            return row_to_int(self._mask_rows[row])
        point = self._matrix[row]
        block = self._matrix[self._live_rows()]
        lt = (block < point) @ self._weights
        eq = (block == point) @ self._weights
        self.counters.dominance_tests += len(block)
        return row_to_int(
            fold_codes((lt + eq) | (eq << self.d), self.d, self._table)
        )

    def _fold_pairs(self, le: np.ndarray, eq: np.ndarray) -> int:
        """OR the closure contributions of the distinct (le, eq) pairs.

        Encoding the pair into one integer lets ``np.unique`` do the
        dedup in C; the closure cache then sees each pair once.
        """
        pairs: Iterable[Tuple[int, int]]
        if 2 * self.d < 63:
            pair_mask = (1 << self.d) - 1
            pairs = (
                (combined >> self.d, combined & pair_mask)
                for combined in np.unique((le << self.d) | eq).tolist()
            )
        else:  # packing would overflow int64; dedup in python instead
            pairs = set(zip(le.tolist(), eq.tolist()))
        mask = 0
        for le_mask, eq_mask in pairs:
            if le_mask:
                mask |= self._closures.dominated_update(le_mask, eq_mask)
                self.counters.bitmask_ops += 1
        return mask

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        if self._packed:
            return self._n_live
        return len(self._ids)

    def membership_mask(self, point_id: int) -> int:
        """Current exact ``B_{p∉S}`` of a live point."""
        if self._packed:
            return self._packed_mask_of(self._pos[point_id])
        return self._masks[point_id]

    def point(self, point_id: int) -> np.ndarray:
        """The coordinates of a live point (copy)."""
        if self._packed:
            try:
                row = self._pos[point_id]
            except KeyError:
                raise KeyError(f"unknown point id {point_id}") from None
            return self._matrix[row].copy()
        try:
            index = self._ids.index(point_id)
        except ValueError:
            raise KeyError(f"unknown point id {point_id}") from None
        return self._rows[index].copy()

    def points(self) -> "Dict[int, np.ndarray]":
        """``{id: coordinates}`` of every live point."""
        if self._packed:
            return {
                pid: self._matrix[row].copy()
                for pid, row in self._pos.items()
            }
        return {
            pid: row.copy() for pid, row in zip(self._ids, self._rows)
        }

    def snapshot_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """``(ids, coordinates, packed mask rows)`` of the live set.

        One id-sorted aligned copy of the maintainer's state, in the
        exact shape the serving bootstrap needs: ids feed
        :meth:`repro.core.hashcube.HashCube.from_masks` together with
        the packed mask rows, the coordinate matrix becomes the
        snapshot's data array.  The mask rows are ``None`` on the
        legacy (``d > PACKED_MAX_D``) path, where masks only exist as
        big ints — callers fall back to per-mask insertion there.
        """
        if self._packed:
            live = self._live_rows()
            ids = self._row_ids[live]
            order = np.argsort(ids)
            rows = live[order]
            return (
                np.ascontiguousarray(ids[order]),
                self._matrix[rows].copy(),
                self._mask_rows[rows].copy(),
            )
        order = sorted(range(len(self._ids)), key=lambda i: self._ids[i])
        ids = np.asarray([self._ids[i] for i in order], dtype=np.int64)
        if order:
            data = np.stack([self._rows[i] for i in order])
        else:
            data = np.empty((0, self.d), dtype=np.float64)
        return ids, data, None

    def skyline(self, delta: int) -> List[int]:
        """Current ``S_δ`` ids without materialising the whole cube."""
        if not 0 < delta <= full_space(self.d):
            raise KeyError(f"invalid subspace {delta} for d={self.d}")
        if self._packed:
            word, bit = divmod(delta - 1, 64)
            probe = np.uint64(1 << bit)
            live = self._live_rows()
            in_skyline = (self._mask_rows[live, word] & probe) == 0
            return sorted(
                int(pid) for pid in self._row_ids[live[in_skyline]]
            )
        bit = 1 << (delta - 1)
        return sorted(
            pid for pid, mask in self._masks.items() if not mask & bit
        )

    def skycube(self, word_width: int = HashCube.DEFAULT_WORD_WIDTH) -> Skycube:
        """Materialise the current state as a HashCube-backed skycube."""
        if self._packed:
            ids, _, mask_rows = self.snapshot_arrays()
            assert mask_rows is not None  # always present on the packed path
            return Skycube(
                HashCube.from_masks(self.d, ids, mask_rows, word_width)
            )
        cube = HashCube(self.d, word_width)
        for pid in sorted(self._masks):
            cube.insert(pid, self._masks[pid])
        # Ids are stable across deletions and need not be dense, so no
        # row array is attached (point lookups go through the caller).
        return Skycube(cube)
