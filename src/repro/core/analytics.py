"""Skycube analytics: what materialisation is *for*.

The skycube's applications (Section 1: "data exploration and
multi-criteria decision making") revolve around per-point semantics
derived from subspace-skyline membership, introduced by the works the
paper builds on (Pei et al.'s decisive subspaces, Chan et al.'s
skyline frequency):

* **skyline frequency** — in how many subspaces a point survives:
  a robustness ranking of options;
* **minimal subspaces** — the smallest attribute combinations in which
  a point is undominated: *why* an option is interesting;
* **decisive subspaces** — minimal subspaces whose skyline membership
  comes with strict distinctness (the point's values on those
  dimensions are not matched by another skyline point), following the
  semantics of Pei et al. [30];
* **subspace stability** — whether a point stays in the skyline under
  every superspace of a given subspace (monotone-robust options).

All functions take the materialised :class:`~repro.core.skycube.Skycube`
(any representation) and return plain Python structures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.bitmask import (
    is_subspace_of,
    popcount,
    proper_submasks,
)
from repro.core.skycube import Skycube

__all__ = [
    "skyline_frequency",
    "membership_masks",
    "minimal_subspaces",
    "subspace_stability",
    "most_robust_points",
]


def membership_masks(skycube: Skycube) -> Dict[int, int]:
    """``{point_id: B_{p∈S}}`` over the skycube's queryable subspaces.

    Bit ``δ - 1`` set iff the point is in ``S_δ`` — the complement view
    of the HashCube's ``B_{p∉S}``.
    """
    masks: Dict[int, int] = {}
    for delta in skycube.subspaces():
        bit = 1 << (delta - 1)
        for point_id in skycube.skyline(delta):
            masks[point_id] = masks.get(point_id, 0) | bit
    return masks


def skyline_frequency(skycube: Skycube) -> Dict[int, int]:
    """Number of subspace skylines each point appears in."""
    return {
        point_id: popcount(mask)
        for point_id, mask in membership_masks(skycube).items()
    }


def most_robust_points(skycube: Skycube, k: int = 5) -> List[Tuple[int, int]]:
    """Top-``k`` ``(point_id, frequency)`` by skyline frequency.

    Ties break towards smaller ids for determinism.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    frequency = skyline_frequency(skycube)
    ranked = sorted(frequency.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]


def minimal_subspaces(
    skycube: Skycube, point_id: Optional[int] = None
) -> Dict[int, List[int]]:
    """Minimal subspaces per point: δ with ``p ∈ S_δ`` but ``p ∉ S_δ'``
    for every non-empty ``δ' ⊂ δ``.

    These are the irreducible reasons a point is interesting — the
    quantity the compressed skycube [39, 40] stores instead of the full
    lattice.  Restrict to one point via ``point_id``.
    """
    masks = membership_masks(skycube)
    if point_id is not None:
        if point_id not in masks:
            return {point_id: []}
        masks = {point_id: masks[point_id]}
    result: Dict[int, List[int]] = {}
    for pid, mask in masks.items():
        minimal: List[int] = []
        delta_bits = mask
        position = 0
        while delta_bits:
            if delta_bits & 1:
                delta = position + 1
                if not any(
                    mask & (1 << (sub - 1)) for sub in proper_submasks(delta)
                ):
                    minimal.append(delta)
            delta_bits >>= 1
            position += 1
        result[pid] = minimal
    return result


def subspace_stability(skycube: Skycube, point_id: int, delta: int) -> bool:
    """True iff the point is in the skyline of *every* queryable
    superspace of ``delta`` (it cannot be dislodged by adding criteria).
    """
    masks = membership_masks(skycube)
    mask = masks.get(point_id, 0)
    if not mask & (1 << (delta - 1)):
        return False
    for other in skycube.subspaces():
        if is_subspace_of(delta, other) and not mask & (1 << (other - 1)):
            return False
    return True
