"""Skylist compression — parent-delta cuboid storage along a DFS tree.

Yuan et al.'s lattice compression (Section 3): cuboids adjacent in the
lattice overlap heavily (a child cuboid's skyline is drawn from its
parent's extended skyline), so a depth-first spanning tree of the
lattice stores every cuboid as a *delta* against its parent — ids
removed plus ids added — falling back to the plain list whenever the
delta would be larger (anticorrelated subspaces can churn more ids
than they keep), so storage never exceeds the lattice's.  Queries
replay the ≤ d entries on the root-to-cuboid path.

Where the HashCube compresses *across* each point's subspace bitmask,
skylists compress *along* lattice edges; the representation bench
contrasts the two.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.bitmask import full_space, immediate_subspaces
from repro.core.lattice import Lattice

__all__ = ["SkylistCube"]


class SkylistCube:
    """Parent-delta skycube storage over a DFS spanning tree."""

    def __init__(self, d: int) -> None:
        self.d = d
        #: δ -> parent subspace on the spanning tree (root maps to None).
        self._parent: Dict[int, Optional[int]] = {}
        #: δ -> ("delta", removed, added) vs the parent, or
        #: ("full", ids) when the delta would be larger.
        self._deltas: Dict[int, Tuple] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def from_lattice(cls, lattice: Lattice) -> "SkylistCube":
        if not lattice.is_complete():
            raise ValueError("can only compress a fully materialised lattice")
        cube = cls(lattice.d)
        root = full_space(lattice.d)
        cube._parent[root] = None
        cube._deltas[root] = ("full", lattice.skyline(root))
        stack = [root]
        seen: Set[int] = {root}
        while stack:
            delta = stack.pop()
            parent_ids = set(lattice.skyline(delta))
            for child in sorted(immediate_subspaces(delta), reverse=True):
                if child in seen:
                    continue
                seen.add(child)
                child_ids = set(lattice.skyline(child))
                removed = tuple(sorted(parent_ids - child_ids))
                added = tuple(sorted(child_ids - parent_ids))
                cube._parent[child] = delta
                if len(removed) + len(added) < len(child_ids):
                    cube._deltas[child] = ("delta", removed, added)
                else:
                    cube._deltas[child] = (
                        "full", tuple(sorted(child_ids))
                    )
                stack.append(child)
        return cube

    # -- queries ------------------------------------------------------------

    def skyline(self, delta: int) -> Tuple[int, ...]:
        """``S_δ`` by replaying the ≤ d deltas from the root."""
        if delta not in self._deltas:
            raise KeyError(f"invalid subspace {delta} for d={self.d}")
        # Walk up only until a "full" entry: it resets the state.
        path: List[int] = []
        node: Optional[int] = delta
        while node is not None:
            path.append(node)
            if self._deltas[node][0] == "full":
                break
            node = self._parent[node]
        current: Set[int] = set()
        for step in reversed(path):
            entry = self._deltas[step]
            if entry[0] == "full":
                current = set(entry[1])
            else:
                current.difference_update(entry[1])
                current.update(entry[2])
        return tuple(sorted(current))

    def to_lattice(self) -> Lattice:
        lattice = Lattice(self.d)
        for delta in self._deltas:
            lattice.set_cuboid(delta, self.skyline(delta))
        return lattice

    # -- statistics -----------------------------------------------------------

    def total_ids_stored(self) -> int:
        """Ids across the root list and all deltas."""
        total = 0
        for entry in self._deltas.values():
            if entry[0] == "full":
                total += len(entry[1])
            else:
                total += len(entry[1]) + len(entry[2])
        return total

    def memory_bytes(self) -> int:
        return 4 * self.total_ids_stored() + 12 * len(self._deltas)

    def compression_ratio_vs(self, lattice: Lattice) -> float:
        own = self.total_ids_stored()
        return float("inf") if own == 0 else lattice.total_ids_stored() / own

    def __repr__(self) -> str:
        return (
            f"SkylistCube(d={self.d}, cuboids={len(self._deltas)}, "
            f"ids={self.total_ids_stored()})"
        )
