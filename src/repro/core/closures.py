"""Down-closure bitsets over the subspace lattice.

MDMC's refine phase repeatedly needs "set the dominated bit for *every*
subspace δ ⊆ m" (Algorithm 3, line 12).  Enumerating submasks per
occurrence is O(2^|m|) each time; but there are only ``2**d`` distinct
masks in total (the paper's observation that duplicate bitmasks convey
no new information).  We therefore cache, per distinct d-bit mask ``m``,
its *down-closure bitset*: a ``2**d - 1`` bit integer whose bit ``δ - 1``
is set for every non-empty ``δ ⊆ m``.

With closures in hand the per-pair update becomes three big-int ops:

* strictly dominated in every ``δ ⊆ B_{q<p}``:  ``B∉S+ |= closure(lt)``
* dominated in every ``δ ⊆ le`` *except* those entirely inside the
  equal dims:  ``B∉S |= closure(le) & ~closure(eq)``

The cache is shared across all points of a run, so the total submask
enumeration work is bounded by ``3**d`` for the whole skycube rather
than per point — the big-int analogue of the paper's duplicate-mask
skipping.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.instrument.counters import Counters

__all__ = ["SubspaceClosures"]


class SubspaceClosures:
    """Memoised down-closure bitsets for the d-dimensional lattice."""

    def __init__(self, d: int, counters: Optional[Counters] = None) -> None:
        if not 1 <= d <= 24:
            raise ValueError(f"d must be in [1, 24] for closure bitsets, got {d}")
        self.d = d
        self.full = (1 << d) - 1
        self._cache: Dict[int, int] = {0: 0}
        self.counters = counters

    def closure(self, mask: int) -> int:
        """Bitset of all non-empty submasks of ``mask``.

        Built lazily by submask enumeration on first request; O(1)
        afterwards.  ``mask`` must fit the d-dimensional space.
        """
        if not 0 <= mask <= self.full:
            raise ValueError(f"mask {mask:#b} out of range for d={self.d}")
        cached = self._cache.get(mask)
        if cached is not None:
            return cached
        bits = 0
        sub = mask
        while sub:
            bits |= 1 << (sub - 1)
            sub = (sub - 1) & mask
        if self.counters is not None:
            self.counters.bitmask_ops += bin(mask).count("1") and (
                1 << bin(mask).count("1")
            )
        self._cache[mask] = bits
        return bits

    def dominated_update(self, le: int, eq: int) -> int:
        """Bitset of subspaces in which a ``(le, eq)`` dominator applies.

        Definition 1: p is dominated in δ iff ``δ ⊆ le`` and ``δ ⊄ eq``.
        """
        return self.closure(le) & ~self.closure(eq)

    def cache_size(self) -> int:
        """Number of distinct masks whose closure has been built."""
        return len(self._cache) - 1  # exclude the seeded empty mask
