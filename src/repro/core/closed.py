"""Closed-skycube compression (Raïssi, Pei & Kister — Section 3).

Adjacent subspaces frequently share *identical* skylines (e.g. adding
a dimension on which no point distinguishes itself).  The closed
skycube partitions the ``2**d - 1`` subspaces into equivalence classes
with equal skylines and stores each distinct skyline exactly once; a
class is represented by its *closed* (maximal) subspace.  Queries map
a subspace to its class and return the shared id list.

The paper cites this scheme as the compression that forces an
inefficient bottom-up construction; here we build it by compressing a
complete skycube after the fact, which is all the comparison benches
need (the HashCube comparison in the ablation suite).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.bitmask import full_space, is_subspace_of
from repro.core.lattice import Lattice

__all__ = ["ClosedSkycube"]


class ClosedSkycube:
    """Equivalence-class compressed skycube (query-compatible)."""

    def __init__(self, d: int) -> None:
        self.d = d
        #: subspace -> class index.
        self._class_of: Dict[int, int] = {}
        #: class index -> shared skyline ids.
        self._skylines: List[Tuple[int, ...]] = []
        #: class index -> closed (maximal) subspaces of the class.
        self._closed: List[List[int]] = []

    # -- construction ---------------------------------------------------

    @classmethod
    def from_lattice(cls, lattice: Lattice) -> "ClosedSkycube":
        """Compress a complete lattice into equivalence classes."""
        if not lattice.is_complete():
            raise ValueError("can only compress a fully materialised lattice")
        cube = cls(lattice.d)
        index_of: Dict[Tuple[int, ...], int] = {}
        members: Dict[int, List[int]] = {}
        for delta, ids in lattice.cuboids():
            key = ids
            class_index = index_of.get(key)
            if class_index is None:
                class_index = len(cube._skylines)
                index_of[key] = class_index
                cube._skylines.append(key)
                members[class_index] = []
            cube._class_of[delta] = class_index
            members[class_index].append(delta)
        for class_index in range(len(cube._skylines)):
            deltas = members[class_index]
            # Closed subspaces: members not strictly contained in
            # another member of the same class.
            cube._closed.append(
                [
                    delta
                    for delta in deltas
                    if not any(
                        other != delta and is_subspace_of(delta, other)
                        for other in deltas
                    )
                ]
            )
        return cube

    # -- queries ----------------------------------------------------------

    def skyline(self, delta: int) -> Tuple[int, ...]:
        """``S_δ(P)`` via the class map."""
        if not 0 < delta <= full_space(self.d):
            raise KeyError(f"invalid subspace {delta} for d={self.d}")
        return self._skylines[self._class_of[delta]]

    def num_classes(self) -> int:
        """Distinct skylines stored."""
        return len(self._skylines)

    def closed_subspaces(self, delta: int) -> List[int]:
        """The maximal subspaces of δ's equivalence class."""
        return list(self._closed[self._class_of[delta]])

    def class_sizes(self) -> Dict[int, int]:
        """Histogram: class size (subspace count) -> #classes."""
        counts: Dict[int, int] = {}
        per_class: Dict[int, int] = {}
        for class_index in self._class_of.values():
            per_class[class_index] = per_class.get(class_index, 0) + 1
        for size in per_class.values():
            counts[size] = counts.get(size, 0) + 1
        return counts

    # -- statistics --------------------------------------------------------

    def total_ids_stored(self) -> int:
        """Id replications across distinct skylines only."""
        return sum(len(ids) for ids in self._skylines)

    def memory_bytes(self) -> int:
        """Ids + class map (2 bytes of class index per subspace)."""
        return 4 * self.total_ids_stored() + 2 * len(self._class_of)

    def compression_ratio_vs(self, lattice: Lattice) -> float:
        own = self.total_ids_stored()
        return float("inf") if own == 0 else lattice.total_ids_stored() / own

    def __repr__(self) -> str:
        return (
            f"ClosedSkycube(d={self.d}, classes={self.num_classes()}, "
            f"ids={self.total_ids_stored()})"
        )
