"""The HashCube skycube representation (Figure 1b, Appendix B.1).

The HashCube stores each point ``p`` by its *non-membership* bitmask
``B_{p∉S}``: a ``2**d - 1`` bit integer whose bit ``δ - 1`` is set iff
``p`` is dominated in subspace ``δ`` (the shift by one skips the unused
empty subspace).  The mask is split into fixed-width *words*; each word
position has its own hash table mapping word values to id lists.  A
point id is thus stored at most once per ``w`` subspaces — up to w-fold
compression over the lattice — and, if a word has *all* its valid bits
set (dominated everywhere in that word's subspace range), the id is not
stored at all for that table.

Retrieval of ``S_δ`` concatenates the id lists of every key in table
``(δ-1) // w`` whose bit ``(δ-1) % w`` is *unset*.

The per-point definition is what enables MDMC's fine-grained parallelism:
each parallel task produces one bitmask and inserts it independently.

``bit_order="level"`` implements the future-work idea of Appendix A.2:
bits are reorganised by lattice level so that, for *partial* skycubes,
the all-set bits of the unmaterialised upper levels cluster into whole
words — which the omission rule then drops entirely, improving
compression exactly where the numeric order cannot.
"""

from __future__ import annotations

from operator import index as _as_int
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.core.bitmask import full_space, popcount
from repro.core.lattice import Lattice

__all__ = ["HashCube"]


class HashCube:
    """Space-efficient skycube keyed by per-point non-membership masks."""

    DEFAULT_WORD_WIDTH = 32
    BIT_ORDERS = ("numeric", "level")

    def __init__(
        self,
        d: int,
        word_width: int = DEFAULT_WORD_WIDTH,
        bit_order: str = "numeric",
    ) -> None:
        if d < 1:
            raise ValueError(f"dimensionality must be positive, got {d}")
        if word_width < 1:
            raise ValueError(f"word width must be positive, got {word_width}")
        if bit_order not in self.BIT_ORDERS:
            raise ValueError(
                f"bit_order must be one of {self.BIT_ORDERS}, got {bit_order!r}"
            )
        self.d = d
        self.word_width = word_width
        self.bit_order = bit_order
        self.num_subspaces = full_space(d)
        self.num_words = -(-self.num_subspaces // word_width)  # ceil div
        # One hash table per word position: word value -> point ids.
        self._tables: List[Dict[int, List[int]]] = [
            {} for _ in range(self.num_words)
        ]
        #: Ids inserted so far (ids are append-only; maintenance always
        #: rebuilds a fresh cube), so batch merges can reject
        #: duplicates in O(1) instead of silently double-storing.
        self._inserted_ids: Set[int] = set()
        #: Point index: id -> stored (permuted) ``B_{p∉S}`` mask.  This
        #: is the serving-path accelerator behind :meth:`contains` — a
        #: membership probe is one dict lookup plus one word extraction
        #: instead of a scan over every table's keys.  It is *not* part
        #: of the paper's representation, so :meth:`memory_bytes` (the
        #: Figure-1 size comparison) deliberately excludes it.
        self._stored_masks: Dict[int, int] = {}
        self._word_mask = (1 << word_width) - 1
        #: How many :meth:`with_updates` generations separate this cube
        #: from its last fully-rebuilt ancestor.  The serving tier's
        #: compaction policy triggers a fresh rebuild once this exceeds
        #: its budget, bounding the key fragmentation delta publishes
        #: can accumulate.
        self.generation = 0
        #: Set on copy-on-write clones: their id lists are shared with
        #: the parent cube, so in-place inserts must be refused (they
        #: would mutate the parent's — supposedly immutable — storage).
        self._shares_tables = False
        #: subspace δ -> bit position, and its inverse (level order only).
        self._bit_of: Optional[Dict[int, int]] = None
        self._delta_at: Optional[List[int]] = None
        if bit_order == "level":
            ordered = sorted(
                range(1, self.num_subspaces + 1),
                key=lambda delta: (popcount(delta), delta),
            )
            self._bit_of = {delta: i for i, delta in enumerate(ordered)}
            self._delta_at = ordered

    def _position(self, delta: int) -> int:
        """Bit position of subspace δ under the configured order."""
        if self._bit_of is None:
            return delta - 1
        return self._bit_of[delta]

    def _permute(self, mask: int) -> int:
        """Map a numeric-order ``B_{p∉S}`` mask into storage order."""
        if self._bit_of is None:
            return mask
        out = 0
        delta = 1
        while mask:
            if mask & 1:
                out |= 1 << self._bit_of[delta]
            mask >>= 1
            delta += 1
        return out

    def _unpermute(self, stored: int) -> int:
        """Inverse of :meth:`_permute`."""
        if self._delta_at is None:
            return stored
        out = 0
        position = 0
        while stored:
            if stored & 1:
                out |= 1 << (self._delta_at[position] - 1)
            stored >>= 1
            position += 1
        return out

    def _valid_bits(self, word_index: int) -> int:
        """Mask of bits that correspond to real subspaces in this word."""
        start = word_index * self.word_width
        bits = min(self.word_width, self.num_subspaces - start)
        return (1 << bits) - 1

    # -- construction -------------------------------------------------

    def insert(self, point_id: int, not_in_skyline_mask: int) -> None:
        """Insert a point by its ``B_{p∉S}`` mask.

        MDMC calls this once per processed point; insertions for distinct
        points are independent, so concurrent tasks never conflict beyond
        the per-key list append.
        """
        if self._shares_tables:
            raise ValueError(
                "this HashCube shares storage with another snapshot "
                "(copy-on-write); derive a new version via with_updates "
                "or build a fresh cube instead of inserting in place"
            )
        if not 0 <= not_in_skyline_mask < (1 << self.num_subspaces):
            raise ValueError(
                f"mask {not_in_skyline_mask:#x} out of range for d={self.d}"
            )
        stored_mask = self._permute(not_in_skyline_mask)
        self._inserted_ids.add(point_id)
        self._stored_masks[point_id] = stored_mask
        for word_index in range(self.num_words):
            word = (stored_mask >> (word_index * self.word_width)) & self._word_mask
            if word == self._valid_bits(word_index):
                continue  # dominated in every subspace of this word: omit
            self._tables[word_index].setdefault(word, []).append(point_id)

    def _split_words(self, mask: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Stored mask plus ``(word_index, word)`` pairs of a valid mask."""
        stored_mask = self._permute(mask)
        words = []
        for word_index in range(self.num_words):
            word = (
                stored_mask >> (word_index * self.word_width)
            ) & self._word_mask
            if word == self._valid_bits(word_index):
                continue  # omission rule, as in insert()
            words.append((word_index, word))
        return stored_mask, words

    def insert_batch(self, items: Iterable[Tuple[int, int]]) -> int:
        """Batch-merge ``(point_id, mask)`` pairs; returns the count.

        The parent-side merge of MDMC's process backend: workers ship
        raw ``B_{p∉S}`` masks and the owning process folds them in
        here.  Because a worker result crosses a process boundary, the
        whole batch is validated *before* anything is merged — a
        malformed item (mask wider than ``2**d - 1`` bits, a negative
        or non-integral id, an id repeated within the batch or already
        stored) raises :class:`ValueError` and leaves the cube
        untouched, rather than half-merging a corrupt result.

        Distinct masks are decomposed into stored words once (there are
        typically far fewer distinct masks than points), so a batch
        costs one dict probe plus the appends per point instead of a
        full permute-and-split.
        """
        if self._shares_tables:
            raise ValueError(
                "this HashCube shares storage with another snapshot "
                "(copy-on-write); derive a new version via with_updates "
                "or build a fresh cube instead of inserting in place"
            )
        word_cache: Dict[int, Tuple[int, List[Tuple[int, int]]]] = {}
        checked: List[Tuple[int, int, List[Tuple[int, int]]]] = []
        batch_ids: Set[int] = set()
        mask_bound = 1 << self.num_subspaces
        for point_id, mask in items:
            try:
                point_id = _as_int(point_id)
            except TypeError:
                raise ValueError(
                    f"point id {point_id!r} is not an integer"
                ) from None
            if point_id < 0:
                raise ValueError(f"point id {point_id} is negative")
            if point_id in batch_ids:
                raise ValueError(
                    f"duplicate point id {point_id} in batch; every "
                    "S+ point contributes exactly one B_{p∉S} mask"
                )
            if point_id in self._inserted_ids:
                raise ValueError(
                    f"point id {point_id} is already stored in this "
                    "HashCube; merging it again would double-count it"
                )
            batch_ids.add(point_id)
            cached = word_cache.get(mask)
            if cached is None:
                if not 0 <= mask < mask_bound:
                    raise ValueError(
                        f"mask {mask:#x} of point {point_id} out of "
                        f"range for d={self.d} (expected "
                        f"{self.num_subspaces} mask bits)"
                    )
                cached = self._split_words(mask)
                word_cache[mask] = cached
            checked.append((point_id, cached[0], cached[1]))
        for point_id, stored_mask, words in checked:
            self._inserted_ids.add(point_id)
            self._stored_masks[point_id] = stored_mask
            for word_index, word in words:
                self._tables[word_index].setdefault(word, []).append(point_id)
        return len(checked)

    @classmethod
    def from_masks(
        cls,
        d: int,
        point_ids: "np.ndarray | Iterable[int]",
        mask_rows: "np.ndarray",
        word_width: int = DEFAULT_WORD_WIDTH,
        bit_order: str = "numeric",
    ) -> "HashCube":
        """Bulk constructor over packed uint64 ``B_{p∉S}`` rows.

        The word-splitting analogue of :meth:`insert_batch` for the
        packed engine: ``mask_rows`` is an ``(n, ceil((2**d - 1)/64))``
        ``np.uint64`` array in *numeric* bit order (bit ``δ - 1`` of row
        ``i`` at word ``(δ-1) // 64``, bit ``(δ-1) % 64``); permutation
        into ``bit_order="level"`` storage happens here.  Distinct rows
        are deduplicated with one ``np.unique`` and widened/split
        exactly once, then ids are appended group-wise — the per-point
        cost is a couple of list appends, never a big-int rebuild.

        Everything is validated before the cube is touched: a wrong row
        width or dtype, bits set beyond the ``2**d - 1`` valid
        subspaces, a non-integral or negative id, or a duplicated id
        raise :class:`ValueError` against a still-empty cube.
        """
        cube = cls(d, word_width, bit_order)
        rows = np.asarray(mask_rows)
        expected_words = -(-cube.num_subspaces // 64)
        if rows.dtype != np.uint64:
            raise ValueError(
                f"mask rows must be np.uint64, got {rows.dtype}"
            )
        if rows.ndim != 2 or rows.shape[1] != expected_words:
            raise ValueError(
                f"expected mask rows of shape (n, {expected_words}) for "
                f"d={d}, got {rows.shape}"
            )
        ids = np.asarray(point_ids)
        if ids.ndim != 1 or len(ids) != len(rows):
            raise ValueError(
                f"got {ids.shape} point ids for {len(rows)} mask rows"
            )
        if len(ids) == 0:
            return cube
        if not np.issubdtype(ids.dtype, np.integer):
            raise ValueError(f"point ids must be integers, got {ids.dtype}")
        if int(ids.min()) < 0:
            raise ValueError(f"point id {int(ids.min())} is negative")
        if len(np.unique(ids)) != len(ids):
            raise ValueError(
                "duplicate point ids in batch; every S+ point contributes "
                "exactly one B_{p∉S} mask"
            )
        top_bits = cube.num_subspaces - 64 * (expected_words - 1)
        top_valid = np.uint64((1 << top_bits) - 1) if top_bits < 64 else (
            np.uint64(0xFFFFFFFFFFFFFFFF)
        )
        if bool(np.any(rows[:, -1] & ~top_valid)):
            raise ValueError(
                f"mask rows set bits beyond the {cube.num_subspaces} valid "
                f"subspaces for d={d}"
            )
        unique_rows, inverse = np.unique(rows, axis=0, return_inverse=True)
        inverse = np.asarray(inverse).ravel()
        split = [
            cube._split_words(
                int.from_bytes(
                    np.ascontiguousarray(row, dtype="<u8").tobytes(), "little"
                )
            )
            for row in unique_rows
        ]
        order = np.argsort(inverse, kind="stable")
        grouped = inverse[order]
        starts = np.flatnonzero(np.r_[True, grouped[1:] != grouped[:-1]])
        bounds = np.r_[starts, len(order)]
        for g in range(len(starts)):
            stored_mask, words = split[int(grouped[bounds[g]])]
            members = [int(i) for i in ids[order[bounds[g]:bounds[g + 1]]]]
            for point_id in members:
                cube._inserted_ids.add(point_id)
                cube._stored_masks[point_id] = stored_mask
            for word_index, word in words:
                cube._tables[word_index].setdefault(word, []).extend(members)
        return cube

    # -- copy-on-write versioning -------------------------------------

    def _stored_words(self, stored_mask: int) -> Iterator[Tuple[int, int]]:
        """``(word_index, word)`` pairs a stored mask occupies.

        The omission rule applied to an *already permuted* mask — the
        exact set of table entries an id with this mask lives in.
        """
        for word_index in range(self.num_words):
            word = (
                stored_mask >> (word_index * self.word_width)
            ) & self._word_mask
            if word == self._valid_bits(word_index):
                continue
            yield word_index, word

    def with_updates(
        self,
        changed_masks: Mapping[int, int],
        removed_ids: Iterable[int] = (),
    ) -> "HashCube":
        """A new cube version differing only in the given masks.

        The delta-publish primitive: ``changed_masks`` maps point id →
        new ``B_{p∉S}`` (ids may be new or already stored),
        ``removed_ids`` lists ids leaving the cube.  The clone shares
        every untouched hash-table *and id-list* object with this cube
        — per changed mask only the word-table dicts it lands in are
        copied, and only the member lists of the touched keys are
        rebuilt — so a k-mask delta costs O(k · words + touched lists),
        never O(n).

        Neither cube may be mutated in place afterwards (both are
        marked copy-on-write and refuse :meth:`insert`); derive further
        versions with another :meth:`with_updates`, and rebuild from
        scratch once :attr:`generation` exceeds the compaction budget.

        Everything is validated before any state is copied: an
        out-of-range mask, a non-integral or negative id, a removal of
        an id this cube never stored, or an id that is simultaneously
        changed and removed raise :class:`ValueError`.
        """
        mask_bound = 1 << self.num_subspaces
        items: List[Tuple[int, int]] = []
        for point_id, mask in changed_masks.items():
            try:
                point_id = _as_int(point_id)
            except TypeError:
                raise ValueError(
                    f"point id {point_id!r} is not an integer"
                ) from None
            if point_id < 0:
                raise ValueError(f"point id {point_id} is negative")
            if not 0 <= mask < mask_bound:
                raise ValueError(
                    f"mask {mask:#x} of point {point_id} out of range "
                    f"for d={self.d}"
                )
            items.append((point_id, mask))
        removed: List[int] = []
        for point_id in removed_ids:
            point_id = _as_int(point_id)
            if point_id not in self._stored_masks:
                raise ValueError(
                    f"cannot remove point id {point_id}: not stored in "
                    "this HashCube version"
                )
            if point_id in changed_masks:
                raise ValueError(
                    f"point id {point_id} is both changed and removed"
                )
            removed.append(point_id)

        clone = HashCube(self.d, self.word_width, self.bit_order)
        clone._tables = list(self._tables)  # shared until touched
        clone._stored_masks = dict(self._stored_masks)
        clone._inserted_ids = set(self._inserted_ids)
        clone.generation = self.generation + 1
        clone._shares_tables = True
        self._shares_tables = True

        # Plan the table movement: which (word_index, word) keys lose
        # which ids, and which gain which — grouped so every touched
        # member list is rebuilt exactly once.
        drops: Dict[Tuple[int, int], Set[int]] = {}
        adds: Dict[Tuple[int, int], List[int]] = {}
        for point_id in removed:
            stored = clone._stored_masks.pop(point_id)
            clone._inserted_ids.discard(point_id)
            for key in self._stored_words(stored):
                drops.setdefault(key, set()).add(point_id)
        for point_id, mask in items:
            old = clone._stored_masks.get(point_id)
            stored_mask, words = self._split_words(mask)
            if old == stored_mask:
                continue  # mask value unchanged: no table movement
            if old is not None:
                for key in self._stored_words(old):
                    drops.setdefault(key, set()).add(point_id)
            clone._stored_masks[point_id] = stored_mask
            clone._inserted_ids.add(point_id)
            for key in words:
                adds.setdefault(key, []).append(point_id)

        copied: Set[int] = set()
        for key in set(drops) | set(adds):
            word_index, word = key
            if word_index not in copied:
                clone._tables[word_index] = dict(clone._tables[word_index])
                copied.add(word_index)
            table = clone._tables[word_index]
            members = table.get(word, [])
            gone = drops.get(key, ())
            fresh = [pid for pid in members if pid not in gone]
            fresh.extend(adds.get(key, ()))
            if fresh:
                table[word] = fresh
            else:
                table.pop(word, None)
        return clone

    # -- queries ------------------------------------------------------

    def skyline(self, delta: int) -> Tuple[int, ...]:
        """``S_δ(P)``: ids whose stored word has bit ``δ-1`` unset."""
        if not 0 < delta <= self.num_subspaces:
            raise KeyError(f"invalid subspace {delta} for d={self.d}")
        word_index, bit = divmod(self._position(delta), self.word_width)
        probe = 1 << bit
        ids: List[int] = []
        for word, members in self._tables[word_index].items():
            if not word & probe:
                ids.extend(members)
        return tuple(sorted(ids))

    def contains(self, point_id: int, delta: int) -> bool:
        """``p ∈ S_δ``: an O(1) single-word membership probe.

        The serving hot path: one point-index lookup, one word
        extraction, one bit test — no table-key scan, no full
        ``membership_mask`` reconstruction.  Ids this cube has never
        stored are in no skyline (by the omission rule a fully
        dominated point reads the same way), so they probe ``False``;
        an invalid subspace raises :exc:`KeyError` like :meth:`skyline`.
        """
        if not 0 < delta <= self.num_subspaces:
            raise KeyError(f"invalid subspace {delta} for d={self.d}")
        stored = self._stored_masks.get(point_id)
        if stored is None:
            return False
        word_index, bit = divmod(self._position(delta), self.word_width)
        word = (stored >> (word_index * self.word_width)) & self._word_mask
        return not word & (1 << bit)

    def membership_mask(self, point_id: int) -> int:
        """Reconstruct ``B_{p∉S}`` for a stored point.

        Delegates to the same stored-word index as :meth:`contains`:
        ids never inserted read as dominated everywhere (all valid bits
        set), exactly what the omission rule implies for them.
        """
        stored = self._stored_masks.get(point_id)
        if stored is None:
            stored = (1 << self.num_subspaces) - 1
        return self._unpermute(stored)

    def point_ids(self) -> Tuple[int, ...]:
        """All distinct point ids appearing in any table."""
        ids = set()
        for table in self._tables:
            for members in table.values():
                ids.update(members)
        return tuple(sorted(ids))

    def cuboids(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Iterate ``(δ, S_δ)`` for every subspace, ascending."""
        for delta in range(1, self.num_subspaces + 1):
            yield delta, self.skyline(delta)

    # -- statistics ---------------------------------------------------

    def total_ids_stored(self) -> int:
        """Id replications across all tables (compression numerator)."""
        return sum(
            len(members) for table in self._tables for members in table.values()
        )

    def num_keys(self) -> int:
        """Distinct hash keys across all tables."""
        return sum(len(table) for table in self._tables)

    def memory_bytes(self) -> int:
        """Rough resident size: ids + one key per list."""
        return 4 * self.total_ids_stored() + 16 * self.num_keys()

    def compression_ratio_vs(self, lattice: Lattice) -> float:
        """Lattice ids stored / HashCube ids stored (>1 means smaller)."""
        own = self.total_ids_stored()
        return float("inf") if own == 0 else lattice.total_ids_stored() / own

    # -- interop ------------------------------------------------------

    def to_lattice(self) -> Lattice:
        """Expand into the equivalent (skyline-only) lattice."""
        lattice = Lattice(self.d)
        for delta, ids in self.cuboids():
            lattice.set_cuboid(delta, ids)
        return lattice

    @classmethod
    def from_lattice(
        cls,
        lattice: Lattice,
        word_width: int = DEFAULT_WORD_WIDTH,
        bit_order: str = "numeric",
    ) -> "HashCube":
        """Compress a complete lattice into a HashCube."""
        if not lattice.is_complete():
            raise ValueError("can only compress a fully materialised lattice")
        cube = cls(lattice.d, word_width, bit_order)
        num_subspaces = full_space(lattice.d)
        all_set = (1 << num_subspaces) - 1
        masks: Dict[int, int] = {}
        for delta, ids in lattice.cuboids():
            bit = 1 << (delta - 1)
            for point_id in ids:
                masks[point_id] = masks.get(point_id, all_set) & ~bit
        for point_id, mask in sorted(masks.items()):
            cube.insert(point_id, mask)
        return cube

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashCube):
            return NotImplemented
        if self.d != other.d:
            return False
        return all(
            self.skyline(delta) == other.skyline(delta)
            for delta in range(1, self.num_subspaces + 1)
        )

    def __repr__(self) -> str:
        return (
            f"HashCube(d={self.d}, w={self.word_width}, "
            f"ids={self.total_ids_stored()}, keys={self.num_keys()})"
        )
