"""Unified skycube facade over both representations.

Algorithms in this library return a :class:`Skycube`, wrapping either a
:class:`~repro.core.lattice.Lattice` (the lattice-traversal templates) or
a :class:`~repro.core.hashcube.HashCube` (MDMC), so callers can query
subspace skylines without caring how the result was materialised.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.core.bitmask import full_space, popcount
from repro.core.hashcube import HashCube
from repro.core.lattice import Lattice

__all__ = ["Skycube"]


class Skycube:
    """Query facade over a materialised skycube."""

    def __init__(
        self,
        store: Union[Lattice, HashCube],
        data: Optional[np.ndarray] = None,
        max_level: Optional[int] = None,
    ) -> None:
        if not isinstance(store, (Lattice, HashCube)):
            raise TypeError(f"unsupported store type {type(store).__name__}")
        self._store = store
        self.d = store.d
        self.data = None if data is None else np.asarray(data, dtype=np.float64)
        #: For partial skycubes (Appendix A.2): levels above this carry
        #: no correctness guarantee and raise on query.
        self.max_level = max_level

    # -- queries ------------------------------------------------------

    def skyline(self, delta: int) -> Tuple[int, ...]:
        """Sorted point ids of ``S_δ(P)``."""
        if not 0 < delta <= full_space(self.d):
            raise KeyError(f"invalid subspace {delta} for d={self.d}")
        if self.max_level is not None and popcount(delta) > self.max_level:
            raise KeyError(
                f"subspace {delta} has {popcount(delta)} dims but this is a "
                f"partial skycube materialised up to level {self.max_level}"
            )
        return self._store.skyline(delta)

    def skyline_points(self, delta: int) -> np.ndarray:
        """The actual skyline rows, if the dataset was attached."""
        if self.data is None:
            raise ValueError("no dataset attached to this skycube")
        return self.data[list(self.skyline(delta))]

    def subspaces(self) -> Iterator[int]:
        """All queryable subspaces, ascending."""
        top = self.d if self.max_level is None else self.max_level
        for delta in range(1, full_space(self.d) + 1):
            if popcount(delta) <= top:
                yield delta

    def to_dict(self) -> Dict[int, Tuple[int, ...]]:
        """``{δ: ids}`` over all queryable subspaces."""
        return {delta: self.skyline(delta) for delta in self.subspaces()}

    # -- representation interop ---------------------------------------

    @property
    def store(self) -> Union[Lattice, HashCube]:
        """The underlying representation object."""
        return self._store

    def as_lattice(self) -> Lattice:
        """This skycube as a lattice (copy if HashCube-backed)."""
        if isinstance(self._store, Lattice):
            return self._store
        return self._store.to_lattice()

    def as_hashcube(self, word_width: int = HashCube.DEFAULT_WORD_WIDTH) -> HashCube:
        """This skycube as a HashCube (compress if lattice-backed)."""
        if isinstance(self._store, HashCube):
            return self._store
        if self.max_level is not None:
            raise ValueError("cannot compress a partial skycube")
        return HashCube.from_lattice(self._store, word_width)

    def memory_bytes(self) -> int:
        """Resident size estimate of the underlying store."""
        return self._store.memory_bytes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Skycube):
            return NotImplemented
        if self.d != other.d:
            return False
        mine, theirs = set(self.subspaces()), set(other.subspaces())
        if mine != theirs:
            return False
        return all(self.skyline(delta) == other.skyline(delta) for delta in mine)

    def __repr__(self) -> str:
        partial = "" if self.max_level is None else f", max_level={self.max_level}"
        return f"Skycube(d={self.d}, store={type(self._store).__name__}{partial})"
