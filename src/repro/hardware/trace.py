"""Trace-driven validation of the analytic cost model.

The analytic model (:mod:`repro.hardware.model`) converts an
algorithm's counters + memory profile into cache misses in closed
form.  This module closes the loop: it synthesizes an address trace
with the *same* stream structure — a sequential stream over the flat
structures, independent random accesses over the data region, and a
hot/cold-skewed dependent chase over the pointer region — replays it
through the cycle-level LRU simulator of :mod:`repro.hardware.cache`,
and reports simulated vs analytic miss counts.  The calibration tests
assert agreement within a small factor, which is the evidence DESIGN.md
§2 leans on when substituting the model for real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.cache import LINE_BYTES, Cache
from repro.hardware.model import (
    CHASE_HOT_FRACTION,
    CHASE_HOT_SET_RATIO,
    CPUContext,
    cpu_task_cost,
)
from repro.hardware.config import CPUConfig
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile

__all__ = ["TraceValidation", "validate_against_simulator"]

#: Virtual base addresses per region, far apart so regions never alias.
_FLAT_BASE = 0x1000_0000
_DATA_BASE = 0x5000_0000
_POINTER_BASE = 0x9000_0000


@dataclass
class TraceValidation:
    """Analytic vs simulated miss counts for one (counters, profile)."""

    analytic_l2_misses: float
    simulated_l2_misses: int
    accesses: int

    @property
    def ratio(self) -> float:
        """simulated / analytic (1.0 = perfect agreement)."""
        if self.analytic_l2_misses == 0:
            return float("inf") if self.simulated_l2_misses else 1.0
        return self.simulated_l2_misses / self.analytic_l2_misses


def _synthesize_addresses(
    counters: Counters, profile: MemoryProfile, seed: int
) -> np.ndarray:
    """One address per line-sized access, interleaving the streams."""
    rng = np.random.default_rng(seed)
    pieces = []

    seq_lines = int(counters.sequential_bytes // LINE_BYTES)
    seq_ws_lines = max(
        1, (profile.flat_bytes + profile.shared_flat_bytes) // LINE_BYTES
    )
    if seq_lines:
        # Repeated in-order sweeps over the flat region.
        base = np.arange(seq_lines) % seq_ws_lines
        pieces.append(_FLAT_BASE + base * LINE_BYTES)

    rand_lines = int(counters.random_bytes // LINE_BYTES)
    rand_ws_lines = max(1, profile.data_bytes // LINE_BYTES)
    if rand_lines:
        pieces.append(
            _DATA_BASE
            + rng.integers(0, rand_ws_lines, rand_lines) * LINE_BYTES
        )

    chase_loads = int(counters.pointer_hops)
    chase_ws_lines = max(
        1,
        (profile.pointer_bytes + min(profile.shared_pointer_bytes,
                                     3 * profile.pointer_bytes))
        // LINE_BYTES,
    )
    if chase_loads:
        hot_lines = max(1, int(chase_ws_lines * CHASE_HOT_SET_RATIO))
        hot = rng.random(chase_loads) < CHASE_HOT_FRACTION
        targets = np.where(
            hot,
            rng.integers(0, hot_lines, chase_loads),
            rng.integers(0, chase_ws_lines, chase_loads),
        )
        pieces.append(_POINTER_BASE + targets * LINE_BYTES)

    if not pieces:
        return np.empty(0, dtype=np.int64)
    addresses = np.concatenate(pieces)
    rng.shuffle(addresses)  # streams interleave in real execution
    return addresses


def validate_against_simulator(
    counters: Counters,
    profile: MemoryProfile,
    config: CPUConfig,
    seed: int = 0,
) -> TraceValidation:
    """Replay a synthesized trace through the LRU simulator at L2 size
    and compare against the analytic L2 miss count."""
    context = CPUContext(threads=1, sockets_used=1)
    analytic = cpu_task_cost(counters, profile, config, context)

    cache = Cache(max(config.l2_bytes, 8 * LINE_BYTES), ways=8)
    addresses = _synthesize_addresses(counters, profile, seed)
    # Warm-up pass so the comparison sees steady state, as the analytic
    # model does.
    warm = min(len(addresses), 4 * cache.capacity_bytes // LINE_BYTES)
    for address in addresses[:warm]:
        cache.access(int(address))
    cache.reset_stats()
    for address in addresses:
        cache.access(int(address))

    return TraceValidation(
        analytic_l2_misses=analytic.l2_misses,
        simulated_l2_misses=cache.stats.misses,
        accesses=len(addresses),
    )
