"""Device configurations mirroring the paper's testbed (Section 7.1).

All constants carry the real spec of the hardware the paper used; the
analytic cost model consumes them.  Alternate configurations can be
constructed freely — the experiments only rely on the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = [
    "CPUConfig",
    "GPUConfig",
    "PlatformConfig",
    "paper_platform",
    "WARP_SIZE",
]

#: Threads per warp on every CUDA generation the paper uses; warp
#: granularity drives the simulated GPU algorithms and MDMC's GPU
#: point engine alike.
WARP_SIZE = 32


@dataclass(frozen=True)
class CPUConfig:
    """A multi-socket multicore CPU (default: 2× Xeon E5-2687W v3)."""

    name: str = "xeon-e5-2687w-v3"
    sockets: int = 2
    cores_per_socket: int = 10
    smt_per_core: int = 2
    clock_hz: float = 3.1e9
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 256 * 1024
    l3_bytes_per_socket: int = 25 * 1024 * 1024
    #: Load-to-use latencies in cycles.
    l2_latency: int = 12
    l3_latency: int = 35
    memory_latency: int = 200
    #: Extra factor on memory latency for remote-socket (NUMA) accesses.
    numa_latency_factor: float = 1.75
    #: Second-level (shared) TLB reach with transparent huge pages
    #: covering the big flat allocations; pointer-heavy heap structures
    #: still live on 4 KB pages, so reach is modest.
    stlb_coverage_bytes: int = 4 * 1024 * 1024
    page_walk_cycles: int = 90
    #: Ideal issue throughput: 4 µops/cycle → 0.25 cycles/instruction.
    base_cpi: float = 0.25
    #: Aggregate issue throughput gain from running 2 SMT threads on a
    #: core (each thread then sustains ``smt_throughput / 2`` of a core).
    smt_throughput: float = 1.25
    #: 8-wide AVX2 lanes (folds into instruction counts upstream).
    simd_width: int = 8
    #: Barrier latency of one synchronisation point.
    sync_cycles: int = 50_000

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def max_threads(self) -> int:
        return self.physical_cores * self.smt_per_core

    def scaled(self, factor: float) -> "CPUConfig":
        """A proportionally miniaturised machine for scaled workloads.

        The experiments run at roughly ``1/factor`` of the paper's
        dataset sizes (DESIGN.md §2); capacity-type resources (L2, L3,
        TLB reach) shrink by the same factor so working-set:capacity
        ratios — and with them every contention and NUMA effect — match
        the paper's regime.  Core counts, clocks and latencies stay
        real: they are what the experiments measure against.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return CPUConfig(
            name=f"{self.name}-scaled-{factor:g}",
            sockets=self.sockets,
            cores_per_socket=self.cores_per_socket,
            smt_per_core=self.smt_per_core,
            clock_hz=self.clock_hz,
            l1_bytes=max(1024, int(self.l1_bytes / factor)),
            l2_bytes=max(2048, int(self.l2_bytes / factor)),
            l3_bytes_per_socket=max(16 * 1024, int(self.l3_bytes_per_socket / factor)),
            l2_latency=self.l2_latency,
            l3_latency=self.l3_latency,
            memory_latency=self.memory_latency,
            numa_latency_factor=self.numa_latency_factor,
            stlb_coverage_bytes=max(4096, int(self.stlb_coverage_bytes / factor)),
            page_walk_cycles=self.page_walk_cycles,
            base_cpi=self.base_cpi,
            smt_throughput=self.smt_throughput,
            simd_width=self.simd_width,
            # Fixed latencies shrink with the workload so overheads
            # keep their paper-scale share of the runtime.
            sync_cycles=max(1_000, int(self.sync_cycles / factor)),
        )


@dataclass(frozen=True)
class GPUConfig:
    """A CUDA GPU (defaults: GTX 980; a Titan preset is provided)."""

    name: str = "gtx-980"
    sms: int = 16
    cores_per_sm: int = 128
    max_threads_per_sm: int = 2048
    clock_hz: float = 1.126e9
    shared_mem_per_sm_bytes: int = 96 * 1024
    l2_bytes: int = 2 * 1024 * 1024
    memory_bandwidth_bytes_per_s: float = 224e9
    #: Host link (PCIe 3 x16 effective).
    pcie_bandwidth_bytes_per_s: float = 12e9
    #: Fixed cost of one kernel launch + device synchronisation.
    kernel_launch_s: float = 8e-6
    #: Cycles a divergent warp wastes re-executing both branch sides.
    divergence_penalty_cycles: int = 24
    #: Transaction granularities: coalesced vs scattered loads.
    coalesced_bytes_per_transaction: int = 128
    scattered_bytes_per_transaction: int = 8
    #: Fraction of peak issue rate sustained on irregular integer/branch
    #: code (Kepler's dual-issue scheme sustains far less than Maxwell).
    compute_efficiency: float = 1.0

    @property
    def total_cores(self) -> int:
        return self.sms * self.cores_per_sm

    @property
    def max_resident_threads(self) -> int:
        return self.sms * self.max_threads_per_sm

    @property
    def bytes_per_cycle(self) -> float:
        return self.memory_bandwidth_bytes_per_s / self.clock_hz

    def scaled(self, factor: float) -> "GPUConfig":
        """Miniaturised GPU matching a ``1/factor`` workload.

        Thread residency (the occupancy denominator) shrinks with the
        task counts; per-point shared-memory *state* does not scale
        with n (it is ``2**d`` bits), so shared memory is kept real.
        Compute width, clock and bandwidth stay real — both CPU and GPU
        task work shrinks identically, so cross-device ratios hold.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return GPUConfig(
            name=f"{self.name}-scaled-{factor:g}",
            sms=self.sms,
            cores_per_sm=self.cores_per_sm,
            max_threads_per_sm=max(32, int(self.max_threads_per_sm / factor)),
            clock_hz=self.clock_hz,
            shared_mem_per_sm_bytes=self.shared_mem_per_sm_bytes,
            l2_bytes=max(16 * 1024, int(self.l2_bytes / factor)),
            memory_bandwidth_bytes_per_s=self.memory_bandwidth_bytes_per_s,
            pcie_bandwidth_bytes_per_s=self.pcie_bandwidth_bytes_per_s,
            # Driver round-trips do not miniaturise with the data:
            # keep a quarter of the real launch latency as the floor.
            kernel_launch_s=max(2e-6, self.kernel_launch_s / factor),
            divergence_penalty_cycles=self.divergence_penalty_cycles,
            coalesced_bytes_per_transaction=self.coalesced_bytes_per_transaction,
            scattered_bytes_per_transaction=self.scattered_bytes_per_transaction,
            compute_efficiency=self.compute_efficiency,
        )


def gtx_titan() -> GPUConfig:
    """The older-generation GTX Titan of the cross-device experiments."""
    return GPUConfig(
        name="gtx-titan",
        sms=14,
        cores_per_sm=192,
        max_threads_per_sm=2048,
        clock_hz=0.837e9,
        shared_mem_per_sm_bytes=48 * 1024,
        l2_bytes=1536 * 1024,
        memory_bandwidth_bytes_per_s=288e9,
        compute_efficiency=0.55,
    )


@dataclass(frozen=True)
class PlatformConfig:
    """The whole heterogeneous ecosystem (Section 7.1)."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    gpus: List[GPUConfig] = field(default_factory=list)

    def device_names(self) -> List[str]:
        names = [f"cpu-socket-{s}" for s in range(self.cpu.sockets)]
        names += [f"{gpu.name}-{i}" for i, gpu in enumerate(self.gpus)]
        return names


def paper_platform() -> PlatformConfig:
    """2 CPU sockets + two GTX 980s + one GTX Titan, as in the paper."""
    return PlatformConfig(
        cpu=CPUConfig(),
        gpus=[GPUConfig(), GPUConfig(name="gtx-980-b"), gtx_titan()],
    )
