"""Analytic device cost models.

This module is the documented substitution for the paper's hardware
(DESIGN.md §2): it maps *measured* algorithmic work — the exact
operation counters and memory profiles each instrumented algorithm
records — onto cycles, cache misses, stalls and TLB behaviour of the
configured devices.  The formulas are first-order but mechanistic; no
per-algorithm special cases exist.  Differences between algorithms
emerge solely from their real counts and structure shapes:

* three access *streams* per task, taken from its counters —
  sequential bytes (prefetchable), random bytes (unpredictable but
  independent) and pointer hops (dependent, unprefetchable);
* per-stream working sets, taken from its memory profile — flat
  private, flat shared, pointer private/shared, raw data;
* capacity effects via :func:`miss_fraction`, validated against the
  cycle-accurate LRU simulator in the calibration tests;
* contention: concurrent threads split the socket's L3 (and, under
  SMT, a core's L2); structures shared read-only across tasks are
  charged once per socket;
* NUMA: with two sockets, private quotas double, but accesses to
  structures shared *across* tasks pay remote latency on the far
  socket, and shared **pointer** structures additionally lose locality
  (cross-socket placement of linked nodes), modelled by
  ``NUMA_POINTER_MISS_FACTOR``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import CPUConfig, GPUConfig
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile

__all__ = ["miss_fraction", "CPUTaskCost", "cpu_task_cost", "CPUContext",
           "GPUPhaseCost", "gpu_phase_cost"]

LINE_BYTES = 64

#: Residual miss rate of a fully cache-resident structure (cold misses,
#: conflict misses): streams re-touch lines across a long run.
RESIDENT_MISS_RATE = 0.01

#: Stall-overlap factors per stream: the fraction of a miss's latency
#: hidden by prefetchers / out-of-order execution.  Sequential streams
#: are almost fully prefetched; independent random loads overlap via
#: the load queue; dependent pointer chases hide almost nothing.
OVERLAP_SEQUENTIAL = 0.95
OVERLAP_RANDOM = 0.60
OVERLAP_POINTER = 0.10

#: Loss of locality for pointer structures shared across sockets
#: (linked nodes interleave over both NUMA nodes, so neither socket's
#: L3 accumulates a useful subset).  Tuned to reproduce the ~7× L3-miss
#: jump PQSkycube shows from one socket to two (Figure 8b).
NUMA_POINTER_MISS_FACTOR = 3.0

#: Mild miss inflation for flat shared structures on two sockets (the
#: copy cached in the far L3 does not help the near socket).
NUMA_FLAT_MISS_FACTOR = 1.35

#: TLB behaviour per stream: sequential loads on huge pages virtually
#: never miss; random loads miss in proportion to their footprint;
#: pointer chases miss hardest (4 KB heap pages, no locality).
TLB_WEIGHT_RANDOM = 1.0
#: Tree nodes are tiny (dozens per page) and allocated in build order,
#: which traversals roughly follow — page-level locality of a chase
#: stream is far better than its line-level locality.
TLB_WEIGHT_POINTER = 0.08

#: Tree traversals are skewed: upper levels are touched on every
#: descent, deep nodes rarely.  A fraction of chase loads therefore
#: lands in a small hot set; the rest is uniform over the structure.
#: This is what keeps a single-threaded QSkycube compute-bound even
#: though one tree exceeds L3 — and lets shrinking per-thread quotas
#: (more cores) push it memory-bound, the CPI trend of Section 7.2.
CHASE_HOT_FRACTION = 0.7
CHASE_HOT_SET_RATIO = 0.1


def _chase_miss_fraction(working_set: float, capacity: float) -> float:
    """Miss fraction of a skewed (hot-top) pointer-chase stream."""
    hot = miss_fraction(working_set * CHASE_HOT_SET_RATIO, capacity)
    cold = miss_fraction(working_set, capacity)
    return CHASE_HOT_FRACTION * hot + (1.0 - CHASE_HOT_FRACTION) * cold


def miss_fraction(working_set_bytes: float, capacity_bytes: float) -> float:
    """Fraction of accesses to a working set that miss a cache level.

    A structure that fits keeps only the residual cold/conflict rate; a
    structure ``w > c`` keeps the resident fraction ``c / w`` hot and
    misses on the rest — the steady-state behaviour of LRU under a
    uniformly re-touched working set (validated against
    :class:`repro.hardware.cache.Cache` in the calibration tests).
    """
    if capacity_bytes <= 0:
        return 1.0
    if working_set_bytes <= capacity_bytes:
        return RESIDENT_MISS_RATE
    return max(RESIDENT_MISS_RATE, 1.0 - capacity_bytes / working_set_bytes)


@dataclass(frozen=True)
class CPUContext:
    """How a task's threads sit on the machine and share structures."""

    threads: int = 1
    sockets_used: int = 1
    #: Flat read-only structures are common to all concurrent tasks
    #: (MDMC's global tree, SDSC's per-cuboid tree) rather than
    #: per-task (STSC, where each cuboid has its own tree).
    share_flat_across_tasks: bool = False
    #: Pointer structures shared between tasks (PQSkycube's retained
    #: parent trees).
    share_pointer_across_tasks: bool = False

    def threads_per_socket(self, config: CPUConfig) -> int:
        sockets = min(self.sockets_used, config.sockets)
        return max(1, -(-self.threads // sockets))

    def smt_active(self, config: CPUConfig) -> bool:
        sockets = min(self.sockets_used, config.sockets)
        return self.threads > sockets * config.cores_per_socket


@dataclass
class CPUTaskCost:
    """Synthesised hardware behaviour of one task on one thread."""

    cycles: float = 0.0
    instructions: int = 0
    l2_misses: float = 0.0
    l3_misses: float = 0.0
    l2_stall_cycles: float = 0.0
    l3_stall_cycles: float = 0.0
    tlb_misses: float = 0.0
    page_walk_cycles: float = 0.0
    load_uops: int = 0

    def merge(self, other: "CPUTaskCost") -> "CPUTaskCost":
        self.cycles += other.cycles
        self.instructions += other.instructions
        self.l2_misses += other.l2_misses
        self.l3_misses += other.l3_misses
        self.l2_stall_cycles += other.l2_stall_cycles
        self.l3_stall_cycles += other.l3_stall_cycles
        self.tlb_misses += other.tlb_misses
        self.page_walk_cycles += other.page_walk_cycles
        self.load_uops += other.load_uops
        return self

    @property
    def cpi(self) -> float:
        return 0.0 if self.instructions == 0 else self.cycles / self.instructions


def cpu_task_cost(
    counters: Counters,
    profile: MemoryProfile,
    config: CPUConfig,
    context: CPUContext,
) -> CPUTaskCost:
    """Cycles and memory behaviour of one task under ``context``."""
    cost = CPUTaskCost()
    cost.instructions = counters.instructions
    cost.load_uops = max(1, counters.values_loaded)

    # ---- per-stream line counts --------------------------------------
    seq_lines = counters.sequential_bytes / LINE_BYTES
    rand_lines = counters.random_bytes / LINE_BYTES
    chase_loads = counters.pointer_hops + counters.tree_nodes_visited * 0.25

    # ---- per-stream working sets -------------------------------------
    shared_flat = profile.shared_flat_bytes
    shared_pointer = profile.shared_pointer_bytes
    seq_ws = profile.flat_bytes + shared_flat
    rand_ws = max(profile.data_bytes, 1)
    # A task only dereferences its own tree plus the one parent tree
    # it reuses — not the whole retained pool.  The pool still occupies
    # the socket's L3 (shared_resident below), which is what creates
    # contention as threads multiply.
    chase_ws = profile.pointer_bytes + min(
        shared_pointer, 3 * profile.pointer_bytes
    )

    # ---- L2: private per core, halved under SMT ----------------------
    l2 = config.l2_bytes
    if context.smt_active(config):
        l2 //= 2
    l2_miss_seq = seq_lines * miss_fraction(seq_ws, l2)
    l2_miss_rand = rand_lines * miss_fraction(rand_ws, l2)
    l2_miss_chase = chase_loads * _chase_miss_fraction(chase_ws, l2)
    cost.l2_misses = l2_miss_seq + l2_miss_rand + l2_miss_chase

    # ---- L3: shared per socket ---------------------------------------
    threads_per_socket = context.threads_per_socket(config)
    l3 = config.l3_bytes_per_socket
    shared_resident = 0.0
    if context.share_flat_across_tasks:
        shared_resident += min(shared_flat, 0.4 * l3)
    if context.share_pointer_across_tasks:
        shared_resident += min(shared_pointer, 0.4 * l3)
    private_quota = max(l2, (l3 - shared_resident) / threads_per_socket)

    # Private streams see their quota; shared streams additionally see
    # the resident shared allocation.
    quota_seq = private_quota + (
        min(shared_flat, 0.4 * l3) if context.share_flat_across_tasks else 0.0
    )
    quota_chase = private_quota + (
        min(shared_pointer, 0.4 * l3) if context.share_pointer_across_tasks else 0.0
    )
    l3_miss_seq = l2_miss_seq * miss_fraction(seq_ws, quota_seq)
    l3_miss_rand = l2_miss_rand * miss_fraction(rand_ws, private_quota + shared_resident)
    l3_miss_chase = l2_miss_chase * _chase_miss_fraction(chase_ws, quota_chase)

    remote_latency = config.memory_latency
    if context.sockets_used > 1 and config.sockets > 1:
        # Cross-socket sharing: shared pointer structures lose locality
        # wholesale; shared flat structures mildly.
        if context.share_pointer_across_tasks and shared_pointer > 0:
            l3_miss_chase *= NUMA_POINTER_MISS_FACTOR
        if context.share_flat_across_tasks and shared_flat > 0:
            l3_miss_seq *= NUMA_FLAT_MISS_FACTOR
        shared_traffic = 0.0
        total_miss = l3_miss_seq + l3_miss_rand + l3_miss_chase
        if context.share_pointer_across_tasks:
            shared_traffic += l3_miss_chase
        if context.share_flat_across_tasks:
            shared_traffic += l3_miss_seq
        remote_fraction = 0.0 if total_miss == 0 else 0.5 * shared_traffic / total_miss
        remote_latency = config.memory_latency * (
            1.0 + remote_fraction * (config.numa_latency_factor - 1.0)
        )
    cost.l3_misses = l3_miss_seq + l3_miss_rand + l3_miss_chase

    # ---- stalls --------------------------------------------------------
    l2_hits_in_l3_seq = (l2_miss_seq - l3_miss_seq)
    l2_hits_in_l3_rand = (l2_miss_rand - l3_miss_rand)
    l2_hits_in_l3_chase = (l2_miss_chase - l3_miss_chase)
    cost.l2_stall_cycles = config.l3_latency * (
        l2_hits_in_l3_seq * (1 - OVERLAP_SEQUENTIAL)
        + l2_hits_in_l3_rand * (1 - OVERLAP_RANDOM)
        + l2_hits_in_l3_chase * (1 - OVERLAP_POINTER)
    )
    cost.l3_stall_cycles = remote_latency * (
        l3_miss_seq * (1 - OVERLAP_SEQUENTIAL)
        + l3_miss_rand * (1 - OVERLAP_RANDOM)
        + l3_miss_chase * (1 - OVERLAP_POINTER)
    )

    # ---- TLB -----------------------------------------------------------
    coverage = config.stlb_coverage_bytes
    cost.tlb_misses = (
        rand_lines * miss_fraction(rand_ws, coverage) * TLB_WEIGHT_RANDOM
        + chase_loads * _chase_miss_fraction(chase_ws, coverage) * TLB_WEIGHT_POINTER
    )
    cost.page_walk_cycles = cost.tlb_misses * config.page_walk_cycles

    cost.cycles = (
        cost.instructions * config.base_cpi
        + cost.l2_stall_cycles
        + cost.l3_stall_cycles
        + cost.page_walk_cycles
    )
    return cost


@dataclass
class GPUPhaseCost:
    """Synthesised behaviour of one kernel (phase or cuboid) on a GPU."""

    cycles: float = 0.0
    seconds: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    occupancy: float = 1.0
    divergence_cycles: float = 0.0
    launches: int = 0

    def merge(self, other: "GPUPhaseCost") -> "GPUPhaseCost":
        self.cycles += other.cycles
        self.seconds += other.seconds
        self.compute_cycles += other.compute_cycles
        self.memory_cycles += other.memory_cycles
        self.divergence_cycles += other.divergence_cycles
        self.launches += other.launches
        # Occupancy of a merged trace: time-weighted average.
        return self


def gpu_phase_cost(
    counters: Counters,
    config: GPUConfig,
    parallel_tasks: int,
    threads_per_task: int = 1,
    state_bytes_per_task: int = 0,
) -> GPUPhaseCost:
    """Time of one kernel executing ``parallel_tasks`` work items.

    Compute cycles are the aggregate instruction count spread over all
    cores, inflated by warp-divergence serialisation; memory cycles are
    transaction counts over the device bandwidth, with sequential bytes
    coalesced (128 B/transaction) and random bytes scattered (one
    transaction per 8 B).  Whichever of the two dominates sets the
    kernel time, *divided by the occupancy factor*: the GPU only hides
    its latencies when enough threads are resident, which requires both
    enough parallel tasks and enough shared memory for their state —
    exactly the effects that throttle SDSC on small cuboids and MDMC at
    high d (Sections 6.2, 7.2).
    """
    cost = GPUPhaseCost(launches=1)
    resident_limit = config.max_resident_threads
    if state_bytes_per_task > 0:
        by_state = (
            config.sms
            * config.shared_mem_per_sm_bytes
            // max(1, state_bytes_per_task)
        ) * threads_per_task
        resident_limit = min(resident_limit, max(threads_per_task, by_state))
    requested = max(1, parallel_tasks * threads_per_task)
    resident = min(requested, resident_limit)
    # Latency hiding needs ~4 resident warps per scheduler; scale
    # occupancy by how far below full residency the kernel sits.
    cost.occupancy = max(0.02, min(1.0, resident / config.max_resident_threads))

    cost.divergence_cycles = (
        counters.branch_divergences * config.divergence_penalty_cycles
    )
    cost.compute_cycles = (
        counters.instructions / (config.total_cores * config.compute_efficiency)
        + cost.divergence_cycles / config.sms
    )
    transactions_bytes = (
        counters.sequential_bytes
        + counters.random_bytes
        / config.scattered_bytes_per_transaction
        * config.coalesced_bytes_per_transaction
    )
    cost.memory_cycles = transactions_bytes / config.bytes_per_cycle

    hidden = max(cost.compute_cycles, cost.memory_cycles)
    overlapped = min(cost.compute_cycles, cost.memory_cycles)
    effective = hidden + 0.2 * overlapped
    cost.cycles = effective / (cost.occupancy ** 0.5)
    cost.seconds = cost.cycles / config.clock_hz + config.kernel_launch_s
    return cost
