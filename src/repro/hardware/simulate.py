"""Replaying skycube execution traces on simulated devices.

The entry points take a :class:`~repro.skycube.base.SkycubeRun` — the
real algorithm's trace of phases, tasks, counters and memory profiles —
plus a device configuration, and synthesize the execution time and
hardware counters the paper measures:

* :func:`simulate_cpu` — thread-level replay on the multicore model
  (Figures 4–6, 8–11, 13);
* :func:`simulate_gpu` — kernel-level replay on a GPU model
  (Figures 7, 13);
* :func:`simulate_heterogeneous` — cross-device distribution over CPU
  sockets and several GPUs (Figures 7, 12).

Phase semantics are uniform across algorithms: tasks that carry
``subtask_units`` are *device-parallel* (one cuboid occupying the whole
device, SDSC-style) and run serially with internal parallelism; tasks
without are atomic thread-level work items (STSC cuboids, MDMC points)
scheduled LPT across the thread pool.  QSkycube is pinned to a single
thread, being the sequential baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.config import CPUConfig, GPUConfig, PlatformConfig
from repro.hardware.model import (
    CPUContext,
    CPUTaskCost,
    GPUPhaseCost,
    cpu_task_cost,
    gpu_phase_cost,
)
from repro.hardware.schedule import lpt_makespan
from repro.instrument.counters import Counters
from repro.skycube.base import SkycubeRun, TaskTrace

__all__ = [
    "CPUSimulation",
    "GPUSimulation",
    "HeterogeneousSimulation",
    "simulate_cpu",
    "simulate_gpu",
    "simulate_heterogeneous",
    "sharing_for_algorithm",
]

def device_parallel_efficiency(threads: int) -> float:
    """Efficiency of intra-cuboid (device-parallel) thread cooperation.

    Threads splitting one tree and inserting into one shared result pay
    coordination costs that *grow with the number of cooperating
    threads* — tile handoff, shared-window contention — which
    independent cuboid tasks never pay.  This is why SDSC scales below
    STSC and degrades under hyper-threading (Figure 5, "consistent
    with the underlying skyline algorithm").
    """
    return max(0.4, 0.85 - 0.011 * threads)

#: Threads a thread block devotes to one MDMC point at dimensionality d
#: (Section 6.2: block size adapts to the 2**d-bit shared-memory state).
def mdmc_threads_per_point(d: int) -> int:
    return max(32, min(1024, (2**d) // 64))


def sharing_for_algorithm(algorithm: str) -> Dict[str, bool]:
    """Cross-task structure sharing, by algorithm (see CPUContext)."""
    if algorithm in ("mdmc", "sdsc"):
        return {"share_flat_across_tasks": True, "share_pointer_across_tasks": False}
    if algorithm == "pqskycube":
        return {"share_flat_across_tasks": False, "share_pointer_across_tasks": True}
    return {"share_flat_across_tasks": False, "share_pointer_across_tasks": False}


@dataclass
class CPUSimulation:
    """Synthesized CPU execution: makespan + aggregate hardware counters."""

    algorithm: str
    threads: int
    sockets: int
    makespan_cycles: float = 0.0
    busy_cycles: float = 0.0
    hardware: CPUTaskCost = field(default_factory=CPUTaskCost)
    config: CPUConfig = field(default_factory=CPUConfig)

    @property
    def seconds(self) -> float:
        return self.makespan_cycles / self.config.clock_hz

    @property
    def cpi(self) -> float:
        """Average cycles per retired instruction across busy threads."""
        if self.hardware.instructions == 0:
            return 0.0
        return self.busy_cycles / self.hardware.instructions

    @property
    def stlb_miss_rate(self) -> float:
        """Fraction of load µops missing the shared TLB (Figure 10a)."""
        return self.hardware.tlb_misses / max(1, self.hardware.load_uops)

    @property
    def page_walk_fraction(self) -> float:
        """Fraction of busy cycles spent in page walks (Figure 10b)."""
        if self.busy_cycles == 0:
            return 0.0
        return self.hardware.page_walk_cycles / self.busy_cycles


def _smt_inflation(context: CPUContext, config: CPUConfig) -> float:
    """Per-thread cycle inflation when two SMT threads share a core."""
    if context.smt_active(config):
        return 2.0 / config.smt_throughput
    return 1.0


def simulate_cpu(
    run: SkycubeRun,
    config: Optional[CPUConfig] = None,
    threads: int = 1,
    sockets: int = 1,
) -> CPUSimulation:
    """Replay ``run`` on the multicore model with a fixed thread pool."""
    config = config if config is not None else CPUConfig()
    if sockets < 1 or sockets > config.sockets:
        raise ValueError(f"sockets must be in [1, {config.sockets}], got {sockets}")
    if threads < 1 or threads > sockets * config.cores_per_socket * config.smt_per_core:
        raise ValueError(f"thread count {threads} exceeds the configured machine")
    if run.algorithm == "qskycube":
        threads, sockets = 1, 1

    context = CPUContext(
        threads=threads,
        sockets_used=sockets,
        **sharing_for_algorithm(run.algorithm),
    )
    inflation = _smt_inflation(context, config)
    sim = CPUSimulation(run.algorithm, threads, sockets, config=config)

    for phase in run.phases:
        serial_cycles = 0.0
        pool_costs: List[float] = []
        for task in phase.tasks:
            cost = cpu_task_cost(task.counters, task.profile, config, context)
            sim.hardware.merge(cost)
            task_cycles = cost.cycles * inflation
            sim.busy_cycles += task_cycles
            if task.subtask_units:
                # Device-parallel task: the whole pool cooperates; its
                # makespan follows the subtask size distribution, and
                # each such task ends with its own barrier (SDSC's
                # 2**d - 2 synchronisation points).
                units = task.subtask_units
                total_units = sum(units)
                if total_units == 0:
                    serial_cycles += task_cycles
                else:
                    subtask_cycles = [
                        task_cycles * unit / total_units for unit in units
                    ]
                    # MDMC's setup tiles are append-only and meet no
                    # shared result structure, unlike SDSC's per-cuboid
                    # cooperative classification; only the latter pays
                    # the coordination penalty.
                    efficiency = (
                        1.0
                        if run.algorithm == "mdmc"
                        else device_parallel_efficiency(threads)
                    )
                    serial_cycles += (
                        lpt_makespan(subtask_cycles, threads) / efficiency
                    )
                serial_cycles += config.sync_cycles
            elif phase.name == "root" and threads > 1:
                # Line 2 of Algorithms 1/2: the root input is computed
                # in parallel even when the hook exposes no subtasks
                # (the baseline blocks it PSkyline-style).
                serial_cycles += task_cycles / (0.9 * threads)
            else:
                pool_costs.append(task_cycles)
        sim.makespan_cycles += serial_cycles
        if pool_costs:
            sim.makespan_cycles += lpt_makespan(pool_costs, threads)
        sim.makespan_cycles += config.sync_cycles
    return sim


@dataclass
class GPUSimulation:
    """Synthesized GPU execution of one run."""

    algorithm: str
    seconds: float = 0.0
    kernel_seconds: float = 0.0
    pcie_seconds: float = 0.0
    phase_costs: List[GPUPhaseCost] = field(default_factory=list)
    config: GPUConfig = field(default_factory=GPUConfig)

    @property
    def launches(self) -> int:
        return sum(cost.launches for cost in self.phase_costs)


def simulate_gpu(
    run: SkycubeRun,
    config: Optional[GPUConfig] = None,
    data_bytes: Optional[int] = None,
) -> GPUSimulation:
    """Replay ``run`` on one GPU (SDSC and MDMC traces only)."""
    config = config if config is not None else GPUConfig()
    if run.algorithm not in ("sdsc", "mdmc"):
        raise ValueError(
            f"{run.algorithm!r} has no GPU specialisation "
            "(STSC's weakness, Section 6.1; baselines are CPU-only)"
        )
    sim = GPUSimulation(run.algorithm, config=config)
    d = run.skycube.d

    for phase in run.phases:
        atomic: List[TaskTrace] = []
        for task in phase.tasks:
            if task.subtask_units:
                cost = gpu_phase_cost(
                    task.counters, config, parallel_tasks=len(task.subtask_units)
                )
                sim.phase_costs.append(cost)
                sim.kernel_seconds += cost.seconds
            else:
                atomic.append(task)
        if atomic:
            merged = Counters()
            state = 0
            for task in atomic:
                merged.merge(task.counters)
                state = max(state, task.counters.extra.get("state_bytes", 0))
            cost = gpu_phase_cost(
                merged,
                config,
                parallel_tasks=len(atomic),
                threads_per_task=mdmc_threads_per_point(d) if state else 1,
                state_bytes_per_task=state,
            )
            sim.phase_costs.append(cost)
            sim.kernel_seconds += cost.seconds

    if data_bytes is None:
        data = run.skycube.data
        data_bytes = 0 if data is None else data.nbytes
    result_bytes = run.skycube.memory_bytes()
    sim.pcie_seconds = (data_bytes + result_bytes) / config.pcie_bandwidth_bytes_per_s
    sim.seconds = sim.kernel_seconds + sim.pcie_seconds
    return sim


@dataclass
class HeterogeneousSimulation:
    """Cross-device execution: makespan + per-device work shares."""

    algorithm: str
    seconds: float = 0.0
    device_seconds: Dict[str, float] = field(default_factory=dict)
    device_shares: Dict[str, float] = field(default_factory=dict)
    parallel_tasks: int = 0


def simulate_heterogeneous(
    run: SkycubeRun,
    platform: Optional[PlatformConfig] = None,
) -> HeterogeneousSimulation:
    """Distribute ``run`` over all CPU sockets and GPUs (Section 7.2).

    Each device's standalone time for the parallel workload is computed
    first; work is then split proportionally to device throughput (the
    steady state of work stealing over many independent tasks), with a
    distribution-efficiency discount when there are too few tasks to
    keep every device busy — the effect that flattens MDMC-All on
    correlated data (Figure 7).
    """
    platform = platform if platform is not None else PlatformConfig()
    if run.algorithm not in ("sdsc", "mdmc"):
        raise ValueError(
            f"cross-device execution needs an SDSC or MDMC trace, got "
            f"{run.algorithm!r}"
        )
    sim = HeterogeneousSimulation(run.algorithm)
    sim.parallel_tasks = run.total_tasks()

    # Standalone times per device.
    socket_cpu = CPUConfig(
        name=platform.cpu.name + "-socket",
        sockets=1,
        cores_per_socket=platform.cpu.cores_per_socket,
        smt_per_core=platform.cpu.smt_per_core,
        clock_hz=platform.cpu.clock_hz,
        l2_bytes=platform.cpu.l2_bytes,
        l3_bytes_per_socket=platform.cpu.l3_bytes_per_socket,
    )
    times: Dict[str, float] = {}
    for socket in range(platform.cpu.sockets):
        cpu_sim = simulate_cpu(
            run, socket_cpu, threads=socket_cpu.cores_per_socket, sockets=1
        )
        times[f"cpu-socket-{socket}"] = cpu_sim.seconds
    for index, gpu in enumerate(platform.gpus):
        gpu_sim = simulate_gpu(run, gpu)
        times[f"{gpu.name}-{index}"] = gpu_sim.seconds

    if not times:
        raise ValueError("platform has no devices")

    # Work-stealing steady state: share ∝ throughput.
    rates = {name: 1.0 / t for name, t in times.items() if t > 0}
    total_rate = sum(rates.values())
    ideal_seconds = 1.0 / total_rate
    efficiency = min(1.0, sim.parallel_tasks / (4.0 * len(times)))
    # The combined run can never beat the fastest device by more than
    # the available task parallelism allows.
    fastest = min(times.values())
    sim.seconds = max(ideal_seconds / max(efficiency, 1e-6), ideal_seconds)
    sim.seconds = min(sim.seconds, fastest)
    for name, rate in rates.items():
        sim.device_shares[name] = rate / total_rate
        sim.device_seconds[name] = times[name]
    return sim
