"""Task scheduling for the simulated devices.

Longest-processing-time (LPT) greedy assignment approximates the
OpenMP dynamic scheduling / boost thread pools of the paper's
implementation: tasks sorted by decreasing cost, each placed on the
least-loaded worker.  Used for thread-level makespans on the simulated
CPU and for cross-device distribution.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

__all__ = ["lpt_assign", "lpt_makespan"]


def lpt_assign(costs: Sequence[float], workers: int) -> List[List[int]]:
    """Assign task indices to ``workers`` bins by LPT; returns bins."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    bins: List[List[int]] = [[] for _ in range(workers)]
    if not costs:
        return bins
    heap: List[Tuple[float, int]] = [(0.0, w) for w in range(workers)]
    heapq.heapify(heap)
    order = sorted(range(len(costs)), key=lambda i: -costs[i])
    for index in order:
        load, worker = heapq.heappop(heap)
        bins[worker].append(index)
        heapq.heappush(heap, (load + costs[index], worker))
    return bins


def lpt_makespan(costs: Sequence[float], workers: int) -> float:
    """Makespan of the LPT assignment (max worker load)."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    if not costs:
        return 0.0
    loads = [0.0] * workers
    heap: List[Tuple[float, int]] = [(0.0, w) for w in range(workers)]
    heapq.heapify(heap)
    for cost in sorted(costs, reverse=True):
        load, worker = heapq.heappop(heap)
        loads[worker] = load + cost
        heapq.heappush(heap, (loads[worker], worker))
    return max(loads)
