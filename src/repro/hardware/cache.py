"""Set-associative LRU cache simulator.

A faithful (if simple) cache model used two ways:

* directly, by unit tests and the calibration suite, to validate the
  qualitative claims the analytic model encodes (streaming over a
  too-large array misses every line; pointer chasing over a resident
  structure hits; two threads interleaving evict each other);
* as the reference behaviour the closed-form
  :func:`repro.hardware.model.miss_fraction` approximates.

Addresses are byte addresses; the cache tracks 64-byte lines in
``sets × ways`` LRU order.  A :class:`CacheHierarchy` chains levels so
one access probes L1 → L2 → L3 and reports the deepest miss.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["Cache", "CacheHierarchy", "LINE_BYTES"]

LINE_BYTES = 64


@dataclass
class CacheStats:
    """Hit/miss tallies of one cache level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return 0.0 if self.accesses == 0 else self.misses / self.accesses


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, capacity_bytes: int, ways: int = 8, line_bytes: int = LINE_BYTES):
        if capacity_bytes < ways * line_bytes:
            raise ValueError(
                f"capacity {capacity_bytes} too small for {ways} ways "
                f"of {line_bytes}-byte lines"
            )
        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = capacity_bytes // (ways * line_bytes)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit.  Misses install."""
        line = address // self.line_bytes
        index = line % self.num_sets
        entries = self._sets[index]
        if line in entries:
            entries.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        entries[line] = True
        if len(entries) > self.ways:
            entries.popitem(last=False)
        return False

    def resident_lines(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()


class CacheHierarchy:
    """An inclusive-probe chain of cache levels (e.g. L1 → L2 → L3).

    ``access`` probes levels in order, stopping at the first hit, and
    installs the line into every missed level above the hit — the
    behaviour whose aggregate miss counts the analytic model mimics.
    """

    def __init__(self, levels: Dict[str, Cache]):
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.levels = levels

    def access(self, address: int) -> str:
        """Touch ``address``; returns the name of the level that hit
        (or ``"memory"`` if every level missed)."""
        missed: List[Cache] = []
        hit_level = "memory"
        for name, cache in self.levels.items():
            if cache.access(address):
                hit_level = name
                break
            missed.append(cache)
        return hit_level

    def stream(self, start: int, num_bytes: int, stride: int = LINE_BYTES) -> Dict[str, int]:
        """Sequentially touch a byte range; returns per-level miss counts."""
        before = {name: cache.stats.misses for name, cache in self.levels.items()}
        address = start
        end = start + num_bytes
        while address < end:
            self.access(address)
            address += stride
        return {
            name: cache.stats.misses - before[name]
            for name, cache in self.levels.items()
        }

    def reset_stats(self) -> None:
        for cache in self.levels.values():
            cache.reset_stats()


class TLB:
    """A tiny fully-associative LRU translation lookaside buffer."""

    def __init__(self, entries: int = 1024, page_bytes: int = 4096):
        if entries < 1:
            raise ValueError(f"TLB needs at least one entry, got {entries}")
        self.entries = entries
        self.page_bytes = page_bytes
        self._pages: OrderedDict = OrderedDict()
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        page = address // self.page_bytes
        if page in self._pages:
            self._pages.move_to_end(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._pages[page] = True
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return False

    @property
    def coverage_bytes(self) -> int:
        """Span of memory the TLB can map at once."""
        return self.entries * self.page_bytes
