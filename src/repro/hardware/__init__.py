"""Simulated heterogeneous hardware: devices, cost models, scheduling."""

from repro.hardware.cache import Cache, CacheHierarchy, TLB
from repro.hardware.config import (
    CPUConfig,
    GPUConfig,
    PlatformConfig,
    gtx_titan,
    paper_platform,
)
from repro.hardware.model import (
    CPUContext,
    CPUTaskCost,
    GPUPhaseCost,
    cpu_task_cost,
    gpu_phase_cost,
    miss_fraction,
)
from repro.hardware.schedule import lpt_assign, lpt_makespan
from repro.hardware.simulate import (
    CPUSimulation,
    GPUSimulation,
    HeterogeneousSimulation,
    simulate_cpu,
    simulate_gpu,
    simulate_heterogeneous,
)

__all__ = [
    "Cache",
    "CacheHierarchy",
    "TLB",
    "CPUConfig",
    "GPUConfig",
    "PlatformConfig",
    "gtx_titan",
    "paper_platform",
    "CPUContext",
    "CPUTaskCost",
    "GPUPhaseCost",
    "cpu_task_cost",
    "gpu_phase_cost",
    "miss_fraction",
    "lpt_assign",
    "lpt_makespan",
    "CPUSimulation",
    "GPUSimulation",
    "HeterogeneousSimulation",
    "simulate_cpu",
    "simulate_gpu",
    "simulate_heterogeneous",
]
