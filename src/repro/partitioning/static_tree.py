"""The global, static quad tree of SkyAlign — extended to three levels.

Unlike the recursive tree, the pivots here are *virtual* points defined
globally: per-dimension medians (level 1), quartiles (level 2) and — the
paper's skycube-specific addition (Section 4.3) — octiles (level 3).
Every point is summarised by three small bitmasks describing which side
of each virtual threshold it falls on; the tree can then be "traversed"
by scanning flat mask arrays, without ever touching point coordinates —
exactly the property that makes the MDMC filter phase load nothing but
path labels and keeps its memory traffic coalesced/sequential.

Mask semantics (per point ``p``, local dimension ``i`` of the subspace):

* ``med``   bit ``i`` set iff ``p[i] <  median[i]``   (better half);
* ``quart`` bit ``i`` set iff ``p[i] <  quartile[i]`` where the
  reference quartile is Q1 in the better half, Q3 in the worse half;
* ``oct``   bit ``i`` set iff ``p[i] <  octile[i]`` for the octile of
  the point's quarter.

Transitive strict-dominance inference between points ``q`` and ``p``:

* ``q.med & ~p.med`` — dims where ``q < median ≤ p``;
* quartile bits count only on dims where the median bits agree
  (same half ⇒ same reference quartile); octile bits likewise require
  agreement on both coarser levels.

Leaves are sorted by path ``(med, quart, oct)`` and all label arrays are
stored flat in leaf order (the reverse point→node lookup of Section 4.3),
so a leaf-order scan is fully sequential.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.bitmask import dims_of, full_space
from repro.instrument.counters import Counters

__all__ = ["StaticTree", "LeafLabels", "octant_matrix"]

#: The seven per-dimension octile fractions, in order.  A value's octant
#: index (0..7) is simply how many of these quantiles it is >= — which
#: equals the nested median/quartile/octile bisection index, so octant
#: order is consistent with the med/quart/oct path labels.
_OCTILE_FRACTIONS = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875)


class _PathLabels(NamedTuple):
    """Raw per-point path labels plus the pivots that produced them."""

    med: np.ndarray
    quart: np.ndarray
    octl: np.ndarray
    medians: np.ndarray
    q1: np.ndarray
    q3: np.ndarray
    octiles: np.ndarray


def _path_labels(rows: np.ndarray) -> _PathLabels:
    """Vectorised med/quart/oct masks of every row (input order).

    The single definition of the three-level path labels, shared by
    :class:`StaticTree` and :meth:`LeafLabels.build` so the per-point
    engines and the packed filter agree bit-for-bit on what a label
    means.  Whole-array ops only — never a per-point Python loop.
    """
    n, k = rows.shape
    medians = np.quantile(rows, 0.5, axis=0)
    q1 = np.quantile(rows, 0.25, axis=0)
    q3 = np.quantile(rows, 0.75, axis=0)
    octiles = np.quantile(rows, [0.125, 0.375, 0.625, 0.875], axis=0)

    weights = 1 << np.arange(k, dtype=np.int64)
    below_med = rows < medians
    med = below_med @ weights

    # Reference quartile per point and dim: Q1 in the better half.
    quart_ref = np.where(below_med, q1, q3)
    below_quart = rows < quart_ref
    quart = below_quart @ weights

    # Octile of the point's quarter.  Quarter order within a dim:
    # (<med, <q1)=0, (<med, >=q1)=1, (>=med, <q3)=2, (>=med, >=q3)=3.
    quarter_index = (~below_med).astype(np.int64) * 2 + (
        ~below_quart
    ).astype(np.int64)
    oct_ref = octiles[quarter_index, np.arange(k)]
    below_oct = rows < oct_ref
    octl = below_oct @ weights
    return _PathLabels(med, quart, octl, medians, q1, q3, octiles)


def octant_matrix(rows: np.ndarray) -> np.ndarray:
    """Per-dimension octant index (0..7) of every row, as ``(n, k)`` uint8.

    Entry ``[p, i]`` counts how many of the seven octile pivots of
    dimension ``i`` are ``<= rows[p, i]`` — equal to the nested
    median/quartile/octile bisection index, so a strictly smaller octant
    index implies a strictly smaller coordinate (sound under ties and
    duplicated pivot values: equal values always share an octant).
    The flat-label form the packed engine's ``S+`` prefilter scans.
    """
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim != 2 or rows.shape[0] == 0:
        raise ValueError(
            f"expected a non-empty 2-D dataset, got shape {rows.shape}"
        )
    pivots = np.quantile(rows, _OCTILE_FRACTIONS, axis=0)  # (7, k)
    index = np.zeros(rows.shape, dtype=np.uint8)
    for level in range(len(_OCTILE_FRACTIONS)):
        index += rows >= pivots[level]
    return index


class LeafLabels:
    """Flat, leaf-ordered path-label arrays for batch filtering.

    The array-of-columns counterpart of :class:`StaticTree`'s per-point
    lookups: ``med``/``quart``/``octl`` are ``(n,)`` int64 mask columns
    sorted into leaf (path-major) order, ``order`` maps leaf position →
    input row, and the top-two-level node directory is recovered from
    the sorted labels by one boundary scan.  Everything a filter phase
    touches is here — no coordinates, no tree object, no dicts — so the
    whole structure ships to pool workers as one ``(n, 3)`` int64
    segment (:func:`repro.engine.parallel.parallel_filtered_packed_masks`).
    """

    __slots__ = (
        "k",
        "n",
        "med",
        "quart",
        "octl",
        "order",
        "node_med",
        "node_quart",
        "node_start",
        "node_end",
    )

    def __init__(
        self,
        med: np.ndarray,
        quart: np.ndarray,
        octl: np.ndarray,
        order: np.ndarray,
        k: int,
    ) -> None:
        self.k = int(k)
        self.n = len(med)
        if not (len(quart) == len(octl) == len(order) == self.n):
            raise ValueError("label columns must share one length")
        self.med = med
        self.quart = quart
        self.octl = octl
        self.order = order
        # Node directory: one row per maximal (med, quart) run of the
        # leaf order — the L2-resident top two levels of Section 5.2.
        change = np.empty(self.n, dtype=bool)
        change[0] = True
        np.logical_or(
            self.med[1:] != self.med[:-1],
            self.quart[1:] != self.quart[:-1],
            out=change[1:],
        )
        starts = np.flatnonzero(change)
        self.node_start = starts
        self.node_end = np.append(starts[1:], self.n)
        self.node_med = self.med[starts]
        self.node_quart = self.quart[starts]

    @classmethod
    def build(cls, rows: np.ndarray) -> "LeafLabels":
        """Labels of ``rows`` (input order), sorted into leaf order."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty 2-D dataset, got shape {rows.shape}"
            )
        labels = _path_labels(rows)
        order = np.lexsort((labels.octl, labels.quart, labels.med))
        return cls(
            labels.med[order],
            labels.quart[order],
            labels.octl[order],
            order,
            rows.shape[1],
        )

    @classmethod
    def from_arrays(
        cls,
        med: np.ndarray,
        quart: np.ndarray,
        octl: np.ndarray,
        k: int,
    ) -> "LeafLabels":
        """Rehydrate from *already leaf-ordered* label columns.

        The worker-side constructor: the parent ships the sorted
        columns through shared memory and the O(n) directory scan in
        ``__init__`` rebuilds the node structure — no quantiles, no
        re-sort, no coordinate access.
        """
        med = np.ascontiguousarray(med, dtype=np.int64)
        quart = np.ascontiguousarray(quart, dtype=np.int64)
        octl = np.ascontiguousarray(octl, dtype=np.int64)
        return cls(med, quart, octl, np.arange(len(med), dtype=np.intp), k)

    def __len__(self) -> int:
        return self.n

    @property
    def node_count(self) -> int:
        return len(self.node_start)

    # -- batch transitive strict-dominance inference -------------------

    def block_node_strict(self, start: int, end: int) -> np.ndarray:
        """``(end - start, nodes)`` strict masks — batch ``node_strict_masks``.

        Entry ``[i, j]`` has bit ``b`` set iff every point of node ``j``
        is provably strictly better than leaf ``start + i`` on local dim
        ``b`` (median/quartile transitivity).  One broadcast over the
        label columns replaces ``end - start`` per-point calls.
        """
        pm = self.med[start:end, None]
        pq = self.quart[start:end, None]
        t1 = self.node_med[None, :] & ~pm
        same_half = ~(self.node_med[None, :] ^ pm)
        t2 = (self.node_quart[None, :] & ~pq) & same_half
        return t1 | t2

    def block_node_prune(self, start: int, end: int) -> np.ndarray:
        """``(end - start, nodes)`` prune masks — batch ``node_prune_masks``.

        Entry ``[i, j]`` has bit ``b`` set iff every point of node ``j``
        is provably *worse* than leaf ``start + i`` on local dim ``b``,
        so node ``j`` cannot dominate that leaf in any subspace
        containing ``b`` (Hybrid's partition pruning, batched).
        """
        pm = self.med[start:end, None]
        pq = self.quart[start:end, None]
        t1 = pm & ~self.node_med[None, :]
        same_half = ~(self.node_med[None, :] ^ pm)
        t2 = (pq & ~self.node_quart[None, :]) & same_half
        return t1 | t2

    def block_leaf_strict(self, start: int, end: int) -> np.ndarray:
        """``(end - start, n)`` strict masks — batch ``leaf_strict_masks``.

        Full three-level (median/quartile/octile) composite evidence
        per leaf, the GPU filter's coalesced scan (Section 6.2).
        """
        pm = self.med[start:end, None]
        pq = self.quart[start:end, None]
        po = self.octl[start:end, None]
        t1 = self.med[None, :] & ~pm
        same_half = ~(self.med[None, :] ^ pm)
        t2 = (self.quart[None, :] & ~pq) & same_half
        same_quarter = same_half & ~(self.quart[None, :] ^ pq)
        t3 = (self.octl[None, :] & ~po) & same_quarter
        return t1 | t2 | t3

    def block_leaf_prune(self, start: int, end: int) -> np.ndarray:
        """``(end - start, n)`` prune masks — batch ``leaf_prune_masks``."""
        pm = self.med[start:end, None]
        pq = self.quart[start:end, None]
        po = self.octl[start:end, None]
        t1 = pm & ~self.med[None, :]
        same_half = ~(self.med[None, :] ^ pm)
        t2 = (pq & ~self.quart[None, :]) & same_half
        same_quarter = same_half & ~(self.quart[None, :] ^ pq)
        t3 = (po & ~self.octl[None, :]) & same_quarter
        return t1 | t2 | t3

    def label_bytes(self) -> int:
        """Bytes of the flat label columns (the filter's working set)."""
        return self.med.nbytes + self.quart.nbytes + self.octl.nbytes

    def __repr__(self) -> str:
        return (
            f"LeafLabels(points={self.n}, dims={self.k}, "
            f"nodes={self.node_count})"
        )


class StaticTree:
    """Three-level (median/quartile/octile) global partitioning tree."""

    def __init__(
        self,
        data: np.ndarray,
        ids: Optional[List[int]] = None,
        delta: Optional[int] = None,
        levels: int = 3,
        counters: Optional[Counters] = None,
    ):
        if levels not in (1, 2, 3):
            raise ValueError(f"levels must be 1, 2 or 3, got {levels}")
        data = np.asarray(data, dtype=np.float64)
        self.levels = levels
        self.d = data.shape[1]
        self.delta = full_space(self.d) if delta is None else delta
        self.dims = dims_of(self.delta)
        self.k = len(self.dims)
        ids = list(range(len(data))) if ids is None else list(ids)
        if not ids:
            raise ValueError("cannot build a static tree over an empty set")
        counters = counters if counters is not None else Counters()

        rows = data[np.asarray(ids)][:, self.dims]
        counters.values_loaded += rows.size
        counters.sequential_bytes += 8 * rows.size

        # Virtual pivots + batch labels: one shared vectorised pass.
        labels = _path_labels(rows)
        self.medians = labels.medians
        self.q1 = labels.q1
        self.q3 = labels.q3
        self.octiles = labels.octiles  # (4, k): octiles 1/8, 3/8, 5/8, 7/8
        med, quart, octl = labels.med, labels.quart, labels.octl
        counters.bitmask_ops += 3 * len(ids)

        if levels < 3:
            octl = np.zeros_like(octl)
        if levels < 2:
            quart = np.zeros_like(quart)

        # Sort into leaf order (path-major) and keep flat label arrays.
        order = np.lexsort((octl, quart, med))
        self.order = order
        self.ids = np.asarray(ids)[order]
        self.med = med[order]
        self.quart = quart[order]
        self.octl = octl[order]
        self.rows = rows[order]
        self._position: Dict[int, int] = {
            int(pid): idx for idx, pid in enumerate(self.ids)
        }
        self._labels: Optional[LeafLabels] = None

        # Top-two-level node directory: (med, quart) -> [start, end).
        self.nodes: List[Tuple[int, int, int, int]] = []
        start = 0
        n = len(self.ids)
        while start < n:
            end = start
            m, q = int(self.med[start]), int(self.quart[start])
            while end < n and int(self.med[end]) == m and int(self.quart[end]) == q:
                end += 1
            self.nodes.append((m, q, start, end))
            start = end
        self.node_med = np.asarray([node[0] for node in self.nodes], dtype=np.int64)
        self.node_quart = np.asarray([node[1] for node in self.nodes], dtype=np.int64)
        self.node_start = np.asarray([node[2] for node in self.nodes], dtype=np.int64)
        self.node_end = np.asarray([node[3] for node in self.nodes], dtype=np.int64)

    # -- lookups -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ids)

    def labels(self) -> LeafLabels:
        """Batch :class:`LeafLabels` view of the tree's flat label arrays.

        The arrays are shared, not copied; ``labels().order`` is the
        input-order → leaf-order permutation applied at construction.
        Hot paths should fetch this once per task and index the flat
        arrays (or use :meth:`positions_of` for id batches) instead of
        per-point lookups.  Memoised: the node-directory boundary scan runs once
        per tree, and every per-point inference method below delegates
        to the batch code, so there is exactly one definition of the
        transitive label arithmetic.
        """
        if self._labels is None:
            self._labels = LeafLabels(
                self.med, self.quart, self.octl, self.order, self.k
            )
        return self._labels

    def positions_of(self, point_ids: np.ndarray) -> np.ndarray:
        """Leaf-order indices of many point ids at once (one dict pass)."""
        return np.asarray(
            [self._position[int(pid)] for pid in point_ids], dtype=np.intp
        )

    # -- transitive strict-dominance inference --------------------------

    def node_strict_masks(self, pos: int) -> np.ndarray:
        """Per-node masks of dims where the node's points beat leaf ``pos``.

        For each top-two-level node, the returned mask has bit ``i`` set
        iff *every* point of that node is provably strictly better than
        the target point on local dim ``i``, by median- or quartile-level
        transitivity.  This is the CPU filter's evidence (Section 5.2).
        """
        return self.labels().block_node_strict(pos, pos + 1)[0]

    def leaf_strict_masks(self, pos: int) -> np.ndarray:
        """Per-leaf strict-dominance masks using the full 3-level path.

        The GPU filter's evidence (Section 6.2): one composite mask per
        leaf, read with coalesced sequential loads.
        """
        return self.labels().block_leaf_strict(pos, pos + 1)[0]

    def node_prune_masks(self, pos: int) -> np.ndarray:
        """Per-node masks of dims where the target provably beats the node.

        Bit ``i`` set means *every* point of the node is provably worse
        than the target on local dim ``i`` (via median/quartile
        transitivity), so the whole node can be skipped as a candidate
        dominator for any subspace containing dim ``i`` — Hybrid's
        partition pruning.
        """
        return self.labels().block_node_prune(pos, pos + 1)[0]

    def leaf_prune_masks(self, pos: int) -> np.ndarray:
        """Per-leaf masks of dims where the *target* provably beats the leaf.

        Bit ``i`` set means the leaf point cannot be ≤ the target on dim
        ``i``; any subspace containing such a dim can prune the leaf as a
        candidate dominator (the refine phase's Equation-1 analogue).
        """
        return self.labels().block_leaf_prune(pos, pos + 1)[0]

    # -- memory profile --------------------------------------------------

    def label_bytes(self) -> int:
        """Bytes of the flat path-label arrays (the scan working set)."""
        return 8 * self.levels * len(self.ids)

    def top_level_bytes(self) -> int:
        """Bytes of the top-two-level node directory (the L2-resident part)."""
        return 32 * len(self.nodes)

    def memory_bytes(self) -> int:
        """Total resident size: labels + directory + id array."""
        return self.label_bytes() + self.top_level_bytes() + 8 * len(self.ids)

    def __repr__(self) -> str:
        return (
            f"StaticTree(points={len(self.ids)}, dims={self.k}, "
            f"levels={self.levels}, nodes={len(self.nodes)})"
        )
