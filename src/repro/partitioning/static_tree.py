"""The global, static quad tree of SkyAlign — extended to three levels.

Unlike the recursive tree, the pivots here are *virtual* points defined
globally: per-dimension medians (level 1), quartiles (level 2) and — the
paper's skycube-specific addition (Section 4.3) — octiles (level 3).
Every point is summarised by three small bitmasks describing which side
of each virtual threshold it falls on; the tree can then be "traversed"
by scanning flat mask arrays, without ever touching point coordinates —
exactly the property that makes the MDMC filter phase load nothing but
path labels and keeps its memory traffic coalesced/sequential.

Mask semantics (per point ``p``, local dimension ``i`` of the subspace):

* ``med``   bit ``i`` set iff ``p[i] <  median[i]``   (better half);
* ``quart`` bit ``i`` set iff ``p[i] <  quartile[i]`` where the
  reference quartile is Q1 in the better half, Q3 in the worse half;
* ``oct``   bit ``i`` set iff ``p[i] <  octile[i]`` for the octile of
  the point's quarter.

Transitive strict-dominance inference between points ``q`` and ``p``:

* ``q.med & ~p.med`` — dims where ``q < median ≤ p``;
* quartile bits count only on dims where the median bits agree
  (same half ⇒ same reference quartile); octile bits likewise require
  agreement on both coarser levels.

Leaves are sorted by path ``(med, quart, oct)`` and all label arrays are
stored flat in leaf order (the reverse point→node lookup of Section 4.3),
so a leaf-order scan is fully sequential.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.bitmask import dims_of, full_space
from repro.instrument.counters import Counters

__all__ = ["StaticTree"]


class StaticTree:
    """Three-level (median/quartile/octile) global partitioning tree."""

    def __init__(
        self,
        data: np.ndarray,
        ids: Optional[List[int]] = None,
        delta: Optional[int] = None,
        levels: int = 3,
        counters: Optional[Counters] = None,
    ):
        if levels not in (1, 2, 3):
            raise ValueError(f"levels must be 1, 2 or 3, got {levels}")
        data = np.asarray(data, dtype=np.float64)
        self.levels = levels
        self.d = data.shape[1]
        self.delta = full_space(self.d) if delta is None else delta
        self.dims = dims_of(self.delta)
        self.k = len(self.dims)
        ids = list(range(len(data))) if ids is None else list(ids)
        if not ids:
            raise ValueError("cannot build a static tree over an empty set")
        counters = counters if counters is not None else Counters()

        rows = data[np.asarray(ids)][:, self.dims]
        counters.values_loaded += rows.size
        counters.sequential_bytes += 8 * rows.size

        # Virtual pivots: global per-dimension quantiles of the input.
        self.medians = np.quantile(rows, 0.5, axis=0)
        self.q1 = np.quantile(rows, 0.25, axis=0)
        self.q3 = np.quantile(rows, 0.75, axis=0)
        self.octiles = np.quantile(
            rows, [0.125, 0.375, 0.625, 0.875], axis=0
        )  # (4, k)

        weights = (1 << np.arange(self.k, dtype=np.int64))
        below_med = rows < self.medians
        med = below_med @ weights

        # Reference quartile per point and dim: Q1 in the better half.
        quart_ref = np.where(below_med, self.q1, self.q3)
        below_quart = rows < quart_ref
        quart = below_quart @ weights

        # Octile of the point's quarter.  Quarter order within a dim:
        # (<med, <q1)=0, (<med, >=q1)=1, (>=med, <q3)=2, (>=med, >=q3)=3.
        quarter_index = (~below_med).astype(np.int64) * 2 + (
            ~below_quart
        ).astype(np.int64)
        oct_ref = self.octiles[quarter_index, np.arange(self.k)]
        below_oct = rows < oct_ref
        octl = below_oct @ weights
        counters.bitmask_ops += 3 * len(ids)

        if levels < 3:
            octl = np.zeros_like(octl)
        if levels < 2:
            quart = np.zeros_like(quart)

        # Sort into leaf order (path-major) and keep flat label arrays.
        order = np.lexsort((octl, quart, med))
        self.ids = np.asarray(ids)[order]
        self.med = med[order]
        self.quart = quart[order]
        self.octl = octl[order]
        self.rows = rows[order]
        self._position: Dict[int, int] = {
            int(pid): idx for idx, pid in enumerate(self.ids)
        }

        # Top-two-level node directory: (med, quart) -> [start, end).
        self.nodes: List[Tuple[int, int, int, int]] = []
        start = 0
        n = len(self.ids)
        while start < n:
            end = start
            m, q = int(self.med[start]), int(self.quart[start])
            while end < n and int(self.med[end]) == m and int(self.quart[end]) == q:
                end += 1
            self.nodes.append((m, q, start, end))
            start = end
        self.node_med = np.asarray([node[0] for node in self.nodes], dtype=np.int64)
        self.node_quart = np.asarray([node[1] for node in self.nodes], dtype=np.int64)
        self.node_start = np.asarray([node[2] for node in self.nodes], dtype=np.int64)
        self.node_end = np.asarray([node[3] for node in self.nodes], dtype=np.int64)

    # -- lookups -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ids)

    def position_of(self, point_id: int) -> int:
        """Leaf-order index of a point id."""
        return self._position[point_id]

    def masks_of(self, point_id: int) -> Tuple[int, int, int]:
        """``(med, quart, oct)`` path labels of a point."""
        pos = self._position[point_id]
        return int(self.med[pos]), int(self.quart[pos]), int(self.octl[pos])

    # -- transitive strict-dominance inference --------------------------

    def node_strict_masks(self, pos: int) -> np.ndarray:
        """Per-node masks of dims where the node's points beat leaf ``pos``.

        For each top-two-level node, the returned mask has bit ``i`` set
        iff *every* point of that node is provably strictly better than
        the target point on local dim ``i``, by median- or quartile-level
        transitivity.  This is the CPU filter's evidence (Section 5.2).
        """
        pm = int(self.med[pos])
        pq = int(self.quart[pos])
        t1 = self.node_med & ~pm
        same_half = ~(self.node_med ^ pm)
        t2 = (self.node_quart & ~pq) & same_half
        return t1 | t2

    def leaf_strict_masks(self, pos: int) -> np.ndarray:
        """Per-leaf strict-dominance masks using the full 3-level path.

        The GPU filter's evidence (Section 6.2): one composite mask per
        leaf, read with coalesced sequential loads.
        """
        pm = int(self.med[pos])
        pq = int(self.quart[pos])
        po = int(self.octl[pos])
        t1 = self.med & ~pm
        same_half = ~(self.med ^ pm)
        t2 = (self.quart & ~pq) & same_half
        same_quarter = same_half & ~(self.quart ^ pq)
        t3 = (self.octl & ~po) & same_quarter
        return t1 | t2 | t3

    def node_prune_masks(self, pos: int) -> np.ndarray:
        """Per-node masks of dims where the target provably beats the node.

        Bit ``i`` set means *every* point of the node is provably worse
        than the target on local dim ``i`` (via median/quartile
        transitivity), so the whole node can be skipped as a candidate
        dominator for any subspace containing dim ``i`` — Hybrid's
        partition pruning.
        """
        pm = int(self.med[pos])
        pq = int(self.quart[pos])
        t1 = pm & ~self.node_med
        same_half = ~(self.node_med ^ pm)
        t2 = (pq & ~self.node_quart) & same_half
        return t1 | t2

    def leaf_prune_masks(self, pos: int) -> np.ndarray:
        """Per-leaf masks of dims where the *target* provably beats the leaf.

        Bit ``i`` set means the leaf point cannot be ≤ the target on dim
        ``i``; any subspace containing such a dim can prune the leaf as a
        candidate dominator (the refine phase's Equation-1 analogue).
        """
        pm = int(self.med[pos])
        pq = int(self.quart[pos])
        po = int(self.octl[pos])
        t1 = pm & ~self.med
        same_half = ~(self.med ^ pm)
        t2 = (pq & ~self.quart) & same_half
        same_quarter = same_half & ~(self.quart ^ pq)
        t3 = (po & ~self.octl) & same_quarter
        return t1 | t2 | t3

    # -- memory profile --------------------------------------------------

    def label_bytes(self) -> int:
        """Bytes of the flat path-label arrays (the scan working set)."""
        return 8 * self.levels * len(self.ids)

    def top_level_bytes(self) -> int:
        """Bytes of the top-two-level node directory (the L2-resident part)."""
        return 32 * len(self.nodes)

    def memory_bytes(self) -> int:
        """Total resident size: labels + directory + id array."""
        return self.label_bytes() + self.top_level_bytes() + 8 * len(self.ids)

    def __repr__(self) -> str:
        return (
            f"StaticTree(points={len(self.ids)}, dims={self.k}, "
            f"levels={self.levels}, nodes={len(self.nodes)})"
        )
