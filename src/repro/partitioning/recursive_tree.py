"""Recursive point-based partitioning (BSkyTree / SkyTree).

This is the variable-depth, pointer-based quad tree underlying the
sequential state of the art, QSkycube (Sections 3, 5.1).  A *balanced
pivot* (min scaled-L1 skyline point) splits the point set into up to
``2**|δ|`` partitions by each point's position mask relative to the
pivot; partitions are processed in increasing mask order so that, by
Equation 1, all potential dominators of a partition (strict submask
partitions) are already classified.

:func:`classify_skytree` returns, for a point set and subspace, every
point of the *extended* skyline together with a flag marking whether it
is merely in ``S+ \\ S`` (dominated but not strictly) — exactly the
``(L[δ], L+[δ])`` pair the lattice templates store per cuboid.

Implementation note — vectorized, scalar-faithful counting: the filter
loops use numpy over candidate arrays for speed, but the counters are
incremented by the number of mask tests and (early-exiting) dominance
tests the sequential algorithm would have executed, so the hardware
cost model sees the real algorithmic work.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.partitioning.pivots import balanced_pivot

__all__ = ["SkyTreeNode", "classify_skytree", "ClassifiedPoint"]

#: ``(point_id, dominated)`` — a member of S+ with its ∉S flag.
ClassifiedPoint = Tuple[int, bool]

#: Below this partition size the recursion falls back to all-pairs.
LEAF_THRESHOLD = 8

#: Estimated resident bytes of one pointer-based tree node (pivot id,
#: mask, child map header and pointers) — used by the memory profiles
#: that feed the cache model; QSkycube's trees are "not very compact".
NODE_BYTES = 96


@dataclass
class SkyTreeNode:
    """One node of the pointer-based recursive tree."""

    pivot_id: int
    mask: int
    children: List["SkyTreeNode"] = field(default_factory=list)

    def node_count(self) -> int:
        """Total nodes in this subtree (including self)."""
        return 1 + sum(child.node_count() for child in self.children)

    def memory_bytes(self) -> int:
        """Resident size estimate of the subtree."""
        return NODE_BYTES * self.node_count()


def _pairwise_classify(
    data: np.ndarray,
    ids: Sequence[int],
    delta: int,
    counters: Counters,
) -> List[ClassifiedPoint]:
    """All-pairs base case: classify a small set under δ-dominance."""
    kept: List[ClassifiedPoint] = []
    dims = dims_of(delta)
    sub = data[np.asarray(ids)][:, dims]
    k = len(ids)
    for j in range(k):
        dominated = False
        strictly = False
        for i in range(k):
            if i == j:
                continue
            counters.dominance_tests += 1
            counters.values_loaded += 2 * len(dims)
            counters.random_bytes += 16 * len(dims)
            le = bool(np.all(sub[i] <= sub[j]))
            if not le:
                continue
            if np.all(sub[i] < sub[j]):
                strictly = True
                break
            if not np.all(sub[i] == sub[j]):
                dominated = True
        if not strictly:
            kept.append((ids[j], dominated))
    return kept


def _classify_vs_candidates(
    sub_candidates: np.ndarray,
    point: np.ndarray,
    counters: Counters,
    dims_count: int,
) -> Tuple[bool, bool]:
    """(strictly_dominated, dominated) of ``point`` vs candidate rows.

    Vectorized, but DTs are counted with the sequential early exit: the
    scan would stop at the first strict dominator.
    """
    if len(sub_candidates) == 0:
        return False, False
    le = np.all(sub_candidates <= point, axis=1)
    lt = np.all(sub_candidates < point, axis=1)
    eq = np.all(sub_candidates == point, axis=1)
    strict_hits = np.flatnonzero(lt)
    if strict_hits.size:
        tests = int(strict_hits[0]) + 1
        counters.dominance_tests += tests
        counters.values_loaded += 2 * dims_count * tests
        counters.random_bytes += 16 * dims_count * tests
        # Candidate points live in tree nodes: reaching each is a
        # dependent pointer dereference.
        counters.pointer_hops += tests
        return True, True
    counters.dominance_tests += len(sub_candidates)
    counters.values_loaded += 2 * dims_count * len(sub_candidates)
    counters.random_bytes += 16 * dims_count * len(sub_candidates)
    counters.pointer_hops += len(sub_candidates)
    dominated = bool(np.any(le & ~eq))
    return False, dominated


def classify_skytree(
    data: np.ndarray,
    ids: Sequence[int],
    delta: int,
    counters: Optional[Counters] = None,
    leaf_threshold: int = LEAF_THRESHOLD,
    pivot_selector=None,
) -> Tuple[List[ClassifiedPoint], Optional[SkyTreeNode]]:
    """Extended-skyline members of ``ids`` in ``δ`` with ∉S flags.

    Returns ``(kept, root)`` where ``kept`` lists ``(id, dominated)``
    for every point of ``S+_δ`` (``dominated`` true iff the point is in
    ``S+_δ \\ S_δ``) and ``root`` is the pointer tree built along the
    way (``None`` for base-case sets).

    ``pivot_selector(data, ids, delta, counters) -> point_id`` swaps
    the pivot rule (default: BSkyTree's balanced pivot); OSP plugs in
    a random skyline point here.
    """
    counters = counters if counters is not None else Counters()
    data = np.asarray(data, dtype=np.float64)
    ids = list(ids)
    if not ids:
        return [], None
    # Chains of single-partition splits can nest as deep as the point
    # count on duplicate-heavy inputs; keep Python's limit above that.
    minimum_limit = len(ids) + 1000
    if sys.getrecursionlimit() < minimum_limit:
        sys.setrecursionlimit(minimum_limit)
    if pivot_selector is None:
        pivot_selector = balanced_pivot
    dims = dims_of(delta)
    kept, root = _recurse(
        data, ids, delta, dims, counters, leaf_threshold, pivot_selector
    )
    return kept, root


def _recurse(
    data: np.ndarray,
    ids: List[int],
    delta: int,
    dims: List[int],
    counters: Counters,
    leaf_threshold: int,
    pivot_selector,
) -> Tuple[List[ClassifiedPoint], Optional[SkyTreeNode]]:
    if len(ids) <= leaf_threshold:
        kept = _pairwise_classify(data, ids, delta, counters)
        node = None
        if kept:
            node = SkyTreeNode(pivot_id=kept[0][0], mask=0)
            node.children = [
                SkyTreeNode(pivot_id=pid, mask=0) for pid, _ in kept[1:]
            ]
            counters.tree_nodes_visited += len(kept)
        return kept, node

    pivot_id = pivot_selector(data, ids, delta, counters)
    pivot = data[pivot_id][dims]
    root = SkyTreeNode(pivot_id=pivot_id, mask=0)
    counters.tree_nodes_visited += 1
    counters.pointer_hops += 1

    # Partition the remaining points by their δ-restricted position mask.
    rest = [pid for pid in ids if pid != pivot_id]
    if not rest:
        return [(pivot_id, False)], root
    rest_arr = np.asarray(rest)
    sub = data[rest_arr][:, dims]
    counters.values_loaded += sub.size
    # Every point descends through this pivot node: one dependent
    # (pointer-chased) load per point per tree level — the traffic
    # signature of the variable-depth tree (Sections 3, 5.1).
    counters.pointer_hops += len(rest)
    # The partitioning pass gathers the subset's rows once, in order:
    # page-locality is good even though the rows are non-contiguous.
    counters.sequential_bytes += 8 * sub.size
    weights = (1 << np.arange(len(dims), dtype=np.int64))
    masks = (sub >= pivot) @ weights
    full = (1 << len(dims)) - 1

    groups: dict = {}
    for pid, mask in zip(rest, masks.tolist()):
        groups.setdefault(mask, []).append(pid)

    # Pivot behaves as a member of the full-mask group for filtering.
    kept: List[ClassifiedPoint] = [(pivot_id, False)]
    kept_masks: List[int] = [full]

    for mask in sorted(groups):
        members = groups[mask]
        if mask == full:
            # Fully classified by the pivot: ≥ pivot on every dim of δ.
            local: List[ClassifiedPoint] = []
            member_rows = data[np.asarray(members)][:, dims]
            counters.dominance_tests += len(members)
            counters.values_loaded += 2 * len(dims) * len(members)
            counters.random_bytes += 16 * len(dims) * len(members)
            strictly = np.all(member_rows > pivot, axis=1)
            equal = np.all(member_rows == pivot, axis=1)
            for pid, is_strict, is_equal in zip(members, strictly, equal):
                if is_strict:
                    continue
                local.append((pid, not is_equal))
            child = None
        else:
            local, child = _recurse(
                data, members, delta, dims, counters, leaf_threshold,
                pivot_selector,
            )
        if child is not None:
            child.mask = mask
            root.children.append(child)
            counters.pointer_hops += 1

        if not local:
            continue

        # Cross-partition filter against kept members of submask groups.
        candidate_rows = []
        scan_order = []
        for idx, kmask in enumerate(kept_masks):
            counters.mask_tests += 1
            counters.values_loaded += 2
            if kmask != mask and (kmask & mask) == kmask:
                scan_order.append(idx)
        if scan_order:
            candidate_ids = [kept[idx][0] for idx in scan_order]
            candidate_rows = data[np.asarray(candidate_ids)][:, dims]

        survivors: List[ClassifiedPoint] = []
        for pid, dominated in local:
            if len(scan_order) == 0:
                survivors.append((pid, dominated))
                continue
            strictly, dom = _classify_vs_candidates(
                candidate_rows, data[pid][dims], counters, len(dims)
            )
            if strictly:
                continue
            survivors.append((pid, dominated or dom))

        for pid, dominated in survivors:
            kept.append((pid, dominated))
            kept_masks.append(mask)

    return kept, root
