"""Pivot selection for point-based partitioning.

Point-based partitioning (Appendix B.2) replaces many exact dominance
tests with single-integer mask tests by relating points to a common
pivot.  How the pivot is chosen is the main axis of variation among the
prior algorithms (Section 3):

* **balanced** — BSkyTree's choice: the skyline point with the smallest
  *range-normalised* L1 distance from the origin, which splits the data
  into the most evenly filled partitions;
* **random skyline point** — OSP's choice;
* **virtual median / quantile points** — VMPSP, Hybrid and SkyAlign use
  coordinate-wise quantiles of the data, which need not be real points
  but make the tree shape *static* and its traversal predictable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters

__all__ = [
    "balanced_pivot",
    "random_skyline_pivot",
    "quantile_pivots",
    "partition_mask",
    "partition_masks_vectorized",
]


def _local_skyline(data: np.ndarray, ids: Sequence[int], dims: List[int]) -> List[int]:
    """Ids (from ``ids``) on the skyline of the projection onto ``dims``."""
    sub = data[np.asarray(ids)][:, dims]
    keep = []
    for j in range(len(ids)):
        le = np.all(sub <= sub[j], axis=1)
        eq = np.all(sub == sub[j], axis=1)
        if not np.any(le & ~eq):
            keep.append(ids[j])
    return keep


def balanced_pivot(
    data: np.ndarray,
    ids: Sequence[int],
    delta: Optional[int] = None,
    counters: Optional[Counters] = None,
) -> int:
    """BSkyTree's balanced pivot: the min scaled-L1 skyline point.

    Coordinates are normalised by the per-dimension range of the current
    point set so no dimension dominates the distance.  Any dominator of a
    point has a strictly smaller scaled-L1 distance, so the global
    minimum is itself a skyline point — selection is a single O(k·d)
    scan rather than a skyline computation.  Returns a point id.
    """
    ids = list(ids)
    if not ids:
        raise ValueError("cannot select a pivot from an empty point set")
    data = np.asarray(data, dtype=np.float64)
    dims = dims_of(delta) if delta is not None else list(range(data.shape[1]))
    sub = data[np.asarray(ids)][:, dims]
    if counters is not None:
        counters.values_loaded += sub.size
    lo = sub.min(axis=0)
    span = sub.max(axis=0) - lo
    span[span == 0.0] = 1.0
    scaled_l1 = ((sub - lo) / span).sum(axis=1)
    return ids[int(np.argmin(scaled_l1))]


def random_skyline_pivot(
    data: np.ndarray,
    ids: Sequence[int],
    delta: Optional[int] = None,
    seed: int = 0,
) -> int:
    """OSP-style pivot: a uniformly random skyline point of the set."""
    ids = list(ids)
    if not ids:
        raise ValueError("cannot select a pivot from an empty point set")
    data = np.asarray(data, dtype=np.float64)
    dims = dims_of(delta) if delta is not None else list(range(data.shape[1]))
    skyline_ids = _local_skyline(data, ids, dims)
    rng = np.random.default_rng(seed)
    return skyline_ids[int(rng.integers(len(skyline_ids)))]


def quantile_pivots(data: np.ndarray, quantiles: Sequence[float]) -> np.ndarray:
    """Virtual pivot points: per-dimension quantiles of the dataset.

    Returns an array of shape ``(len(quantiles), d)``; row ``k`` is the
    virtual point whose every coordinate is the ``quantiles[k]`` quantile
    of that dimension.  SkyAlign uses medians and quartiles; our static
    tree adds octiles (Section 4.3).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError(f"expected a non-empty 2-D dataset, got shape {data.shape}")
    for q in quantiles:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantiles must lie strictly in (0, 1), got {q}")
    return np.quantile(data, list(quantiles), axis=0)


def partition_mask(point: Sequence[float], pivot: Sequence[float]) -> int:
    """Partition bitmask of ``point`` relative to ``pivot``.

    Bit ``i`` is set iff ``point[i] >= pivot[i]`` — the ``B_{piv<=p}``
    encoding of Appendix B.2 (Figure 14), the operand of Equation 1.
    """
    mask = 0
    for i, (value, threshold) in enumerate(zip(point, pivot)):
        if value >= threshold:
            mask |= 1 << i
    return mask


def partition_masks_vectorized(data: np.ndarray, pivot: np.ndarray) -> np.ndarray:
    """:func:`partition_mask` for every row of ``data`` at once."""
    data = np.asarray(data, dtype=np.float64)
    d = data.shape[1]
    weights = (1 << np.arange(d, dtype=np.int64))
    return (data >= np.asarray(pivot, dtype=np.float64)) @ weights
