"""Memory-footprint profiles of algorithm runs.

The cost model (Figures 8–11) needs to know not just *how much* work an
algorithm did (its :class:`~repro.instrument.counters.Counters`) but what
its resident structures looked like: pointer-based trees thrash caches
and TLBs, flat shared arrays do not.  Each algorithm therefore reports a
:class:`MemoryProfile` describing its working set, split by structure
kind and shareability.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryProfile"]


@dataclass
class MemoryProfile:
    """Resident working set of one algorithm run or parallel task.

    * ``data_bytes`` — raw point coordinates touched (dominance tests);
    * ``pointer_bytes`` — pointer-based structures (recursive trees):
      traversed by dependent loads, never prefetchable, TLB-hostile;
    * ``flat_bytes`` — private flat arrays (tiles, windows, sort keys):
      streamed, prefetcher-friendly;
    * ``shared_flat_bytes`` — read-only flat structures shared by every
      thread/device (the static tree's label arrays): one resident copy
      serves all cores of a socket;
    * ``shared_pointer_bytes`` — pointer structures shared *between*
      tasks (PQSkycube's parent quad trees reused by child cuboids):
      when threads sit on different sockets these are chased across the
      interconnect, the NUMA behaviour of Figures 8–9;
    * ``output_bytes`` — result structures written (lattice cuboids or
      HashCube masks).
    """

    data_bytes: int = 0
    pointer_bytes: int = 0
    flat_bytes: int = 0
    shared_flat_bytes: int = 0
    shared_pointer_bytes: int = 0
    output_bytes: int = 0

    def private_working_set(self) -> int:
        """Bytes each task needs for itself (competes for cache)."""
        return self.data_bytes + self.pointer_bytes + self.flat_bytes

    def total_working_set(self) -> int:
        """All resident bytes, shared structures included once."""
        return (
            self.private_working_set()
            + self.shared_flat_bytes
            + self.shared_pointer_bytes
            + self.output_bytes
        )

    def merge(self, other: "MemoryProfile") -> "MemoryProfile":
        """Accumulate another profile into this one (max for shared)."""
        self.data_bytes += other.data_bytes
        self.pointer_bytes += other.pointer_bytes
        self.flat_bytes += other.flat_bytes
        # Shared structures do not replicate across tasks.
        self.shared_flat_bytes = max(self.shared_flat_bytes, other.shared_flat_bytes)
        self.shared_pointer_bytes = max(
            self.shared_pointer_bytes, other.shared_pointer_bytes
        )
        self.output_bytes += other.output_bytes
        return self

    def scaled(self, factor: float) -> "MemoryProfile":
        """A copy with private structures scaled (per-task splitting)."""
        return MemoryProfile(
            data_bytes=int(self.data_bytes * factor),
            pointer_bytes=int(self.pointer_bytes * factor),
            flat_bytes=int(self.flat_bytes * factor),
            shared_flat_bytes=self.shared_flat_bytes,
            shared_pointer_bytes=self.shared_pointer_bytes,
            output_bytes=int(self.output_bytes * factor),
        )
