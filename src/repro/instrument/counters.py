"""Operation counters — the instrumentation backbone.

Every algorithm in this library performs its real computation while
incrementing a :class:`Counters` object.  The simulated hardware layer
(:mod:`repro.hardware`) then maps those exact counts onto device cost
models to synthesize the paper's wall-clock and hardware-counter figures.

Counters are deliberately plain integers: incrementing them costs almost
nothing, so instrumentation can stay always-on without distorting the
relative work the counts describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

__all__ = ["Counters"]


@dataclass
class Counters:
    """Tally of the primitive operations an algorithm executed.

    Attributes map one-to-one onto the cost drivers the paper discusses:

    * ``dominance_tests`` — exact DTs (Definition 1); each loads up to
      ``2·|δ|`` coordinate values.
    * ``mask_tests`` — Equation-1 transitive tests on partition bitmasks.
    * ``values_loaded`` — float/int operands fetched by DTs and MTs.
    * ``tree_nodes_visited`` / ``pointer_hops`` — tree traversal work;
      pointer hops mark *dependent* (unprefetchable) loads, the behaviour
      that sinks PQSkycube in Figures 8–11.
    * ``sequential_bytes`` / ``random_bytes`` — bytes touched with
      streaming vs scattered access patterns (prefetcher- and
      coalescing-relevant).
    * ``sync_points`` — barriers between lattice levels or kernel launches.
    * ``tasks`` — parallel work items produced (cuboids or points).
    * ``bitmask_ops`` — submask enumeration and membership-mask updates.
    * ``branch_divergences`` — data-dependent branches inside otherwise
      uniform loops (serialisation cost on the simulated GPU).

    The ``pairs_pruned`` / ``leaves_skipped`` / ``label_bytes`` trio
    records the *effectiveness* of the packed engine's label filter
    (Section 4.3): pair comparisons never coded, whole leaves skipped
    before refinement, and bytes of path-label arrays scanned to decide
    both.  They measure work avoided rather than work done, so they do
    not contribute to :attr:`instructions`.
    """

    dominance_tests: int = 0
    mask_tests: int = 0
    values_loaded: int = 0
    tree_nodes_visited: int = 0
    pointer_hops: int = 0
    sequential_bytes: int = 0
    random_bytes: int = 0
    sync_points: int = 0
    tasks: int = 0
    bitmask_ops: int = 0
    branch_divergences: int = 0
    points_processed: int = 0
    pairs_pruned: int = 0
    leaves_skipped: int = 0
    label_bytes: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def merge(self, other: "Counters") -> "Counters":
        """Accumulate ``other`` into ``self`` and return ``self``."""
        for f in fields(self):
            if f.name == "extra":
                for key, value in other.extra.items():
                    self.extra[key] = self.extra.get(key, 0) + value
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "Counters":
        """An independent copy of the current tallies."""
        clone = Counters()
        clone.merge(self)
        return clone

    def reset(self) -> None:
        """Zero every counter (including ``extra``)."""
        for f in fields(self):
            if f.name == "extra":
                self.extra = {}
            else:
                setattr(self, f.name, 0)

    @property
    def instructions(self) -> int:
        """A first-order instruction estimate for CPI-style metrics.

        Weights approximate the instruction footprint of each primitive:
        a d-dimensional DT unrolls to a handful of compare/blend ops per
        value, an MT is a few bitwise ops, tree hops are address
        arithmetic plus a load, bitmask ops are single ALU ops.
        """
        return (
            6 * self.dominance_tests
            + 4 * self.mask_tests
            + 2 * self.values_loaded
            + 3 * self.tree_nodes_visited
            + 2 * self.pointer_hops
            + self.bitmask_ops
            + (self.sequential_bytes + self.random_bytes) // 8
            + 10 * self.points_processed
        )

    def as_dict(self) -> Dict[str, int]:
        """Flat dict view (``extra`` keys inlined) for reporting."""
        out = {}
        for f in fields(self):
            if f.name == "extra":
                out.update(self.extra)
            else:
                out[f.name] = getattr(self, f.name)
        return out

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return "Counters(" + ", ".join(parts) + ")"
