"""Default hook registry: architecture → skyline algorithm.

The templates are architecture-oblivious by construction (Section 4.1);
the knowledge of *which* concrete algorithm fills a hook on a given
architecture lives here, not in the template modules.  skylint's
SKY002 enforces that split: template code asks this registry for a
default instead of importing GPU-only classes directly.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.skyline.base import SkylineAlgorithm
from repro.skyline.hybrid import Hybrid
from repro.skyline.skyalign import SkyAlign

__all__ = ["DEFAULT_HOOKS", "default_hook"]

#: ``(architecture, needs_parallel) -> default algorithm class``.  The
#: paper's choices: Hybrid on CPU either way (run single-threaded it is
#: the STSC hook, Section 5.1; its tiles are SDSC's intra-cuboid
#: subtasks), SkyAlign on GPU (Section 6.1).  There is deliberately no
#: ``("gpu", False)`` entry — no single-threaded GPU algorithm exists,
#: which the paper names as STSC's clear weakness.
DEFAULT_HOOKS: Dict[Tuple[str, bool], Type[SkylineAlgorithm]] = {
    ("cpu", False): Hybrid,
    ("cpu", True): Hybrid,
    ("gpu", True): SkyAlign,
}


def default_hook(
    architecture: str, parallel: bool = False, simulate: bool = False
) -> SkylineAlgorithm:
    """The paper's default hook instance for an architecture.

    ``parallel=True`` requests a device-parallel algorithm (an SDSC or
    MDMC setup hook); ``parallel=False`` accepts the architecture's
    default regardless of threading.  Raises :class:`LookupError` when
    no such algorithm exists (single-threaded GPU).

    For ``architecture="gpu"`` the hook is *real* whenever it can be: a
    :class:`~repro.skyline.accelerated.KernelSkyline` over the first
    available GPU kernel backend (:func:`repro.engine.jit.gpu_backend`).
    With no CUDA backend importable the behaviour splits on
    ``simulate``: ``simulate=True`` — what the templates pass — accepts
    the instrumented :class:`~repro.skyline.skyalign.SkyAlign`
    simulation instead, while the default ``simulate=False`` raises the
    typed :class:`~repro.engine.jit.base.BackendUnavailableError`
    naming the missing extra, so a direct ``default_hook("gpu")`` never
    silently simulates.
    """
    try:
        algorithm = DEFAULT_HOOKS[(architecture, parallel)]
    except KeyError:
        raise LookupError(
            f"no default {'parallel ' if parallel else ''}skyline "
            f"algorithm for architecture {architecture!r}"
        ) from None
    if architecture == "gpu":
        from repro.engine.jit import BackendUnavailableError, gpu_backend
        from repro.skyline.accelerated import KernelSkyline

        try:
            return KernelSkyline(gpu_backend())
        except BackendUnavailableError:
            if not simulate:
                raise
    return algorithm()
