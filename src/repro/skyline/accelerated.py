"""The real accelerated skyline hook, backed by a kernel backend.

Everywhere else in :mod:`repro.skyline` the GPU is *simulated*:
:class:`~repro.skyline.skyalign.SkyAlign` executes on the CPU while
counting the memory transactions and warp votes a GPU would perform.
:class:`KernelSkyline` is the other half of the story — when a compiled
backend from :mod:`repro.engine.jit` is importable (CuPy with a visible
CUDA device, or Numba's parallel CPU kernels), the hook actually runs
the dominance classification on it.  ``default_hook("gpu")`` resolves
here first and only falls back to the simulation when explicitly
allowed (``simulate=True``).

The hook is uninstrumented by design: the compiled kernels record no
per-operation counts, so ``counters`` only receives the task tally.
Results are bit-identical to every other algorithm — classification is
integer rank algebra in all backends.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.skyline.base import SkylineAlgorithm, SkylineResult

__all__ = ["KernelSkyline"]


class KernelSkyline(SkylineAlgorithm):
    """Skyline/extended-skyline via a compiled kernel backend.

    Wraps any :class:`repro.engine.jit.base.KernelBackend`: the δ
    projection of the selected rows goes through
    :meth:`~repro.engine.jit.base.KernelBackend.classify`, whose two
    boolean arrays are exactly the ``(L[δ], L+[δ] \\ L[δ])`` split the
    templates consume.
    """

    parallel = True

    def __init__(self, backend: "object") -> None:
        from repro.engine.jit.base import KernelBackend

        if not isinstance(backend, KernelBackend):
            raise TypeError(
                f"KernelSkyline wraps a KernelBackend, got {backend!r}"
            )
        self.backend = backend.require()
        self.name = f"kernel-{backend.name}"
        self.architecture = backend.device

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        id_array = np.asarray(ids, dtype=np.int64)
        dims = dims_of(delta)
        rows = np.ascontiguousarray(data[id_array][:, dims])
        dominated, strictly = self.backend.classify(rows)
        skyline = id_array[~dominated]
        extended_only = id_array[dominated & ~strictly]
        counters.tasks += len(ids)
        counters.points_processed += len(ids)
        return SkylineResult(
            skyline.tolist(),
            extended_only.tolist(),
            counters,
            task_units=[1] * len(ids),
        )
