"""VMPSP — virtual-median-point space partitioning (Zhang et al.).

The recursive point-based partitioning variant that uses *virtual*
pivots (Section 3): each recursion level splits its point set by the
per-dimension medians of that subset, instead of electing a real
skyline point.  No point is consumed per level, so a degenerate guard
(all points in one partition — e.g. heavy duplicates) falls back to
the all-pairs base case.

Partitions are cross-filtered exactly as in BSkyTree: with the
``>= pivot`` mask encoding, a partition with mask ``m1`` can only
dominate one with ``m2 ⊇ m1`` (Equation 1), so masks are processed in
increasing numeric order — every potential dominator partition first.
"""

from __future__ import annotations

import sys
from typing import List

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.partitioning.recursive_tree import (
    NODE_BYTES,
    _classify_vs_candidates,
    _pairwise_classify,
)
from repro.skyline.base import SkylineAlgorithm, SkylineResult

__all__ = ["VMPSP"]

LEAF_THRESHOLD = 8


class VMPSP(SkylineAlgorithm):
    """Recursive partitioning around virtual per-dimension medians."""

    name = "vmpsp"
    parallel = False
    architecture = "cpu"

    def __init__(self, leaf_threshold: int = LEAF_THRESHOLD):
        self.leaf_threshold = leaf_threshold

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        dims = dims_of(delta)
        minimum_limit = len(ids) + 1000
        if sys.getrecursionlimit() < minimum_limit:
            sys.setrecursionlimit(minimum_limit)
        self._nodes = 0
        kept = self._recurse(data, list(ids), dims, counters)
        profile = MemoryProfile(
            data_bytes=8 * len(dims) * len(ids),
            pointer_bytes=NODE_BYTES * self._nodes,
        )
        skyline = [pid for pid, dominated in kept if not dominated]
        extras = [pid for pid, dominated in kept if dominated]
        return SkylineResult(skyline, extras, counters, profile)

    def _recurse(self, data, ids, dims, counters):
        if len(ids) <= self.leaf_threshold:
            delta_local = 0
            for dim in dims:
                delta_local |= 1 << dim
            return _pairwise_classify(data, ids, delta_local, counters)

        rows = data[np.asarray(ids)][:, dims]
        counters.values_loaded += rows.size
        counters.sequential_bytes += 8 * rows.size
        medians = np.median(rows, axis=0)
        weights = (1 << np.arange(len(dims), dtype=np.int64))
        masks = (rows >= medians) @ weights
        self._nodes += 1
        counters.tree_nodes_visited += 1
        counters.pointer_hops += len(ids)

        groups: dict = {}
        for pid, mask in zip(ids, masks.tolist()):
            groups.setdefault(mask, []).append(pid)
        if len(groups) == 1:
            # Degenerate split (duplicates / all on one side of every
            # median): the virtual pivot cannot make progress.
            delta_local = 0
            for dim in dims:
                delta_local |= 1 << dim
            return _pairwise_classify(data, ids, delta_local, counters)

        kept = []
        kept_masks: List[int] = []
        for mask in sorted(groups):
            local = self._recurse(data, groups[mask], dims, counters)
            # Filter against kept members of strict submask groups.
            scan = []
            for index, kmask in enumerate(kept_masks):
                counters.mask_tests += 1
                counters.values_loaded += 2
                if kmask != mask and (kmask & mask) == kmask:
                    scan.append(index)
            if scan:
                candidate_ids = [kept[index][0] for index in scan]
                candidate_rows = data[np.asarray(candidate_ids)][:, dims]
            survivors = []
            for pid, dominated in local:
                if not scan:
                    survivors.append((pid, dominated))
                    continue
                strictly, dom = _classify_vs_candidates(
                    candidate_rows, data[pid][dims], counters, len(dims)
                )
                if strictly:
                    continue
                survivors.append((pid, dominated or dom))
            for pid, dominated in survivors:
                kept.append((pid, dominated))
                kept_masks.append(mask)
        return kept
