"""Hybrid — the multicore skyline of Chester et al. (ICDE 2015).

The paper's STSC and SDSC CPU hook (Section 5.1).  Hybrid builds a
compact, fixed two-level, array-based partitioning tree (medians +
quartiles) and processes points in *tiles* so threads share the tree
read-only while each works on a private, cache-resident block.  Every
point's full path fits one machine word, so partition pruning is pure
intra-cycle bit parallelism; dominance tests only run against leaves of
partitions that survive both the strict-evidence and prune mask scans.

Compared to BSkyTree it trades a little pruning power for a structure
that is flat, static and shared — the property that keeps STSC/SDSC
NUMA-tolerant in Figures 8–10.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.partitioning.static_tree import StaticTree
from repro.skyline.base import SkylineAlgorithm, SkylineResult

__all__ = ["Hybrid"]


class Hybrid(SkylineAlgorithm):
    """Tiled two-level static-tree skyline with S/S+ classification."""

    name = "hybrid"
    parallel = True
    architecture = "cpu"

    #: Adaptive tiling keeps roughly this many tiles available so the
    #: thread pool is never starved, while capping tiles at the paper's
    #: cache-resident 256 points.
    TARGET_TILES = 32

    def __init__(self, tile_size: int = None):
        if tile_size is not None and tile_size < 1:
            raise ValueError(f"tile size must be positive, got {tile_size}")
        self.tile_size = tile_size

    def _tile_size_for(self, n: int) -> int:
        if self.tile_size is not None:
            return self.tile_size
        return max(16, min(256, n // self.TARGET_TILES))

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        tree = StaticTree(data, ids, delta, levels=2, counters=counters)
        n = len(tree)
        tile_size = self._tile_size_for(n)
        k = tree.k
        full_local = (1 << k) - 1
        rows = tree.rows

        strict = np.zeros(n, dtype=bool)
        dominated = np.zeros(n, dtype=bool)
        task_units: List[int] = []

        for tile_start in range(0, n, tile_size):
            tile_end = min(n, tile_start + tile_size)
            tile_tests = 0
            for pos in range(tile_start, tile_end):
                point = rows[pos]
                node_strict = tree.node_strict_masks(pos)

                # Sequential scan semantics: the thread stops at the
                # first partition that proves strict dominance.  Nodes
                # are scanned best-mask-first (descending path label),
                # so clustered (correlated) inputs finish in a handful
                # of comparisons.
                hits = np.flatnonzero(node_strict[::-1] == full_local)
                if hits.size:
                    scanned = int(hits[0]) + 1
                    counters.mask_tests += scanned
                    counters.values_loaded += scanned
                    counters.sequential_bytes += 8 * scanned
                    strict[pos] = True
                    dominated[pos] = True
                    continue
                node_prune = tree.node_prune_masks(pos)
                counters.mask_tests += 2 * len(tree.nodes)
                counters.values_loaded += 2 * len(tree.nodes)
                counters.sequential_bytes += 16 * len(tree.nodes)

                is_dominated = False
                is_strict = False
                for node_idx in np.flatnonzero(node_prune == 0):
                    start = int(tree.node_start[node_idx])
                    end = int(tree.node_end[node_idx])
                    leaves = rows[start:end]
                    lt = np.all(leaves < point, axis=1)
                    strict_hits = np.flatnonzero(lt)
                    if strict_hits.size:
                        tests = int(strict_hits[0]) + 1
                        counters.dominance_tests += tests
                        counters.values_loaded += 2 * k * tests
                        counters.random_bytes += 8 * k * tests
                        tile_tests += tests
                        is_strict = True
                        is_dominated = True
                        break
                    count = end - start
                    counters.dominance_tests += count
                    counters.values_loaded += 2 * k * count
                    counters.random_bytes += 8 * k * count
                    tile_tests += count
                    if not is_dominated:
                        le = np.all(leaves <= point, axis=1)
                        eq = np.all(leaves == point, axis=1)
                        # A point never dominates itself or a duplicate.
                        if bool(np.any(le & ~eq)):
                            is_dominated = True
                strict[pos] = is_strict
                dominated[pos] = is_dominated
            task_units.append(max(1, tile_tests))

        counters.tasks += len(task_units)
        profile = MemoryProfile(
            data_bytes=8 * k * n,
            shared_flat_bytes=tree.memory_bytes(),
            flat_bytes=8 * k * min(tile_size, n),
        )
        skyline = [int(tree.ids[pos]) for pos in range(n) if not dominated[pos]]
        extras = [
            int(tree.ids[pos])
            for pos in range(n)
            if dominated[pos] and not strict[pos]
        ]
        return SkylineResult(skyline, extras, counters, profile, task_units)
