"""BSkyTree — the sequential state-of-the-art skyline (Lee & Hwang).

A thin algorithm wrapper over the recursive balanced-pivot partitioning
of :mod:`repro.partitioning.recursive_tree`.  This is the engine inside
QSkycube and, being pointer-based and variable-depth, the source of its
cache/TLB troubles on parallel hardware (Sections 3, 5.1) — its memory
profile accordingly reports the built tree as pointer bytes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.partitioning.recursive_tree import classify_skytree
from repro.skyline.base import SkylineAlgorithm, SkylineResult

__all__ = ["BSkyTree"]


class BSkyTree(SkylineAlgorithm):
    """Balanced-pivot recursive point-based partitioning skyline."""

    name = "bskytree"
    parallel = False
    architecture = "cpu"

    def __init__(self, leaf_threshold: int = 8):
        self.leaf_threshold = leaf_threshold

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        kept, root = classify_skytree(
            data, ids, delta, counters, self.leaf_threshold
        )
        k = len(dims_of(delta))
        profile = MemoryProfile(
            data_bytes=8 * k * len(ids),
            pointer_bytes=root.memory_bytes() if root is not None else 0,
        )
        skyline = [pid for pid, dominated in kept if not dominated]
        extras = [pid for pid, dominated in kept if dominated]
        return SkylineResult(skyline, extras, counters, profile)
