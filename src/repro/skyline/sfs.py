"""Sort-filter skyline (Chomicki et al.).

Points are pre-sorted by a monotone score (the δ-restricted coordinate
sum): any dominator of a point has a strictly smaller score, so each
point only needs comparing against *already kept* points and survivors
are final the moment they are admitted.  This removes BNL's window
churn and is the backbone of the GPU GGS baseline.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.skyline.base import SkylineAlgorithm, SkylineResult

__all__ = ["SortFilterSkyline"]


class SortFilterSkyline(SkylineAlgorithm):
    """Monotone-sort + single filtering pass."""

    name = "sfs"
    parallel = False
    architecture = "cpu"

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        dims = dims_of(delta)
        k = len(dims)
        ids_arr = np.asarray(ids)
        rows = data[ids_arr][:, dims]
        counters.sequential_bytes += 8 * rows.size

        scores = rows.sum(axis=1)
        order = np.argsort(scores, kind="stable")
        counters.values_loaded += rows.size

        kept_rows: List[np.ndarray] = []
        kept_ids: List[int] = []
        kept_dominated: List[bool] = []

        for idx in order:
            point = rows[idx]
            dropped = False
            dominated = False
            if kept_rows:
                window = np.asarray(kept_rows)
                lt = np.all(window < point, axis=1)
                strict_hits = np.flatnonzero(lt)
                if strict_hits.size:
                    tests = int(strict_hits[0]) + 1
                    counters.dominance_tests += tests
                    counters.values_loaded += 2 * k * tests
                    counters.random_bytes += 8 * k * tests
                    dropped = True
                else:
                    counters.dominance_tests += len(kept_rows)
                    counters.values_loaded += 2 * k * len(kept_rows)
                    counters.random_bytes += 8 * k * len(kept_rows)
                    le = np.all(window <= point, axis=1)
                    eq = np.all(window == point, axis=1)
                    dominated = bool(np.any(le & ~eq))
            if not dropped:
                kept_rows.append(point)
                kept_ids.append(int(ids_arr[idx]))
                kept_dominated.append(dominated)

        profile = MemoryProfile(
            data_bytes=8 * rows.size,
            flat_bytes=8 * k * len(kept_rows) + 8 * len(ids),
        )
        skyline = [p for p, dom in zip(kept_ids, kept_dominated) if not dom]
        extras = [p for p, dom in zip(kept_ids, kept_dominated) if dom]
        return SkylineResult(skyline, extras, counters, profile)
