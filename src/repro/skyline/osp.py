"""OSP — object-based space partitioning (Zhang, Mamoulis & Cheung).

The earliest of the recursive point-based partitioning skylines the
paper surveys (Section 3): identical control flow to BSkyTree, but the
pivot of each sub-partition is a *random* skyline point rather than
the balanced (min scaled-L1) choice.  Included as the pivot-selection
baseline the balanced rule improves on; the pivot ablation bench
quantifies the difference on identical inputs.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.partitioning import recursive_tree
from repro.partitioning.pivots import random_skyline_pivot
from repro.skyline.base import SkylineAlgorithm, SkylineResult

__all__ = ["OSP"]


class OSP(SkylineAlgorithm):
    """Recursive partitioning with random skyline-point pivots."""

    name = "osp"
    parallel = False
    architecture = "cpu"

    def __init__(self, seed: int = 0, leaf_threshold: int = 8):
        self.seed = seed
        self.leaf_threshold = leaf_threshold

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        selector = _SeededSelector(self.seed)
        kept, root = recursive_tree.classify_skytree(
            data,
            ids,
            delta,
            counters,
            self.leaf_threshold,
            pivot_selector=selector,
        )
        k = len(dims_of(delta))
        profile = MemoryProfile(
            data_bytes=8 * k * len(ids),
            pointer_bytes=root.memory_bytes() if root is not None else 0,
        )
        skyline = [pid for pid, dominated in kept if not dominated]
        extras = [pid for pid, dominated in kept if dominated]
        return SkylineResult(skyline, extras, counters, profile)


class _SeededSelector:
    """Per-call reseeded random pivot selection (deterministic runs)."""

    def __init__(self, seed: int):
        self.seed = seed
        self._calls = 0

    def __call__(self, data, ids, delta, counters):
        self._calls += 1
        return random_skyline_pivot(
            data, ids, delta, seed=self.seed + self._calls
        )
