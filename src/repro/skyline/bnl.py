"""Block-nested-loops skyline (Börzsönyi et al., ICDE 2001).

The canonical baseline: stream points past a window of surviving
candidates, comparing both directions.  The window invariant is that it
always holds the exact S+-classification of the prefix processed so
far, with per-member flags marking ``S+ \\ S`` membership; incoming
points can evict (strictly dominate) or demote (dominate) window
members and vice versa.

Quadratic in the skyline size, no auxiliary structures — the reference
point against which the partitioning algorithms' MT savings show up.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.skyline.base import SkylineAlgorithm, SkylineResult

__all__ = ["BlockNestedLoops"]


class BlockNestedLoops(SkylineAlgorithm):
    """Window-based nested-loops skyline with S/S+ classification."""

    name = "bnl"
    parallel = False
    architecture = "cpu"

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        dims = dims_of(delta)
        k = len(dims)
        window_ids: List[int] = []
        window_dominated: List[bool] = []
        window_rows: List[np.ndarray] = []

        for pid in ids:
            point = data[pid][dims]
            counters.sequential_bytes += 8 * k
            dropped = False
            dominated = False
            if window_rows:
                rows = np.asarray(window_rows)
                le = np.all(rows <= point, axis=1)
                lt = np.all(rows < point, axis=1)
                eq = np.all(rows == point, axis=1)
                # Sequential semantics: scan stops at the first strict
                # dominator; count DTs accordingly.
                strict_hits = np.flatnonzero(lt)
                if strict_hits.size:
                    tests = int(strict_hits[0]) + 1
                    counters.dominance_tests += tests
                    counters.values_loaded += 2 * k * tests
                    counters.random_bytes += 8 * k * tests
                    dropped = True
                else:
                    counters.dominance_tests += len(window_rows)
                    counters.values_loaded += 2 * k * len(window_rows)
                    counters.random_bytes += 8 * k * len(window_rows)
                    dominated = bool(np.any(le & ~eq))
                    # Reverse direction: the incoming point may evict or
                    # demote window members.
                    ge = np.all(rows >= point, axis=1)
                    gt = np.all(rows > point, axis=1)
                    if np.any(gt) or np.any(ge & ~eq):
                        keep = ~gt
                        demote = ge & ~eq & keep
                        new_ids, new_dom, new_rows = [], [], []
                        for idx in np.flatnonzero(keep):
                            new_ids.append(window_ids[idx])
                            new_dom.append(window_dominated[idx] or bool(demote[idx]))
                            new_rows.append(window_rows[idx])
                        window_ids, window_dominated = new_ids, new_dom
                        window_rows = new_rows
            if not dropped:
                window_ids.append(pid)
                window_dominated.append(dominated)
                window_rows.append(point)

        profile = MemoryProfile(
            data_bytes=8 * k * len(ids),
            flat_bytes=8 * k * len(window_ids),
        )
        skyline = [p for p, dom in zip(window_ids, window_dominated) if not dom]
        extras = [p for p, dom in zip(window_ids, window_dominated) if dom]
        return SkylineResult(skyline, extras, counters, profile)
