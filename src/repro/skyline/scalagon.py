"""Scalagon — lattice-prefiltered skyline for low-cardinality domains.

Endres, Roocks & Kießling's algorithm (Section 3): when attributes
take few distinct values, dominance can be decided wholesale on the
*value lattice* instead of point by point.  Points are mapped onto a
coarse per-dimension grid; a cell is certainly strictly dominated if
some occupied cell sits strictly below it on every dimension — a
single sweep of cumulative ORs over the grid decides this for *all*
cells at once.  Surviving points (a small fraction on low-cardinality
or correlated data) are classified exactly with a BNL pass.

The prefilter only ever drops *certainly strictly dominated* points:
cell boundaries are monotone, so a cell strictly below on every axis
implies strict value dominance, and dropping strictly dominated points
changes neither S nor S+ (their dominators chain to surviving points).
The hybrid therefore stays exact on arbitrary data; its advantage
appears when the grid is dense — the paper's "effective when the
number of distinct values is low", e.g. the Covertype stand-in.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.skyline.base import SkylineAlgorithm, SkylineResult
from repro.skyline.bnl import BlockNestedLoops

__all__ = ["Scalagon"]

#: Upper bound on grid cells; the per-dimension resolution is derived
#: from it (the paper sizes the lattice to memory similarly).
MAX_CELLS = 1 << 18


class Scalagon(SkylineAlgorithm):
    """Grid-lattice prefilter + exact BNL refinement."""

    name = "scalagon"
    parallel = False
    architecture = "cpu"

    def __init__(self, max_cells: int = MAX_CELLS):
        if max_cells < 4:
            raise ValueError(f"grid needs at least 4 cells, got {max_cells}")
        self.max_cells = max_cells

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        dims = dims_of(delta)
        k = len(dims)
        rows = data[np.asarray(ids)][:, dims]
        counters.sequential_bytes += 8 * rows.size

        # Per-dimension resolution: distinct values if few, else an
        # even split of the cell budget.
        resolution = max(2, int(self.max_cells ** (1.0 / k)))
        cells = np.empty_like(rows, dtype=np.int64)
        shape = []
        for j in range(k):
            values = np.unique(rows[:, j])
            if len(values) <= resolution:
                cells[:, j] = np.searchsorted(values, rows[:, j])
                shape.append(len(values))
            else:
                lo, hi = values[0], values[-1]
                span = hi - lo if hi > lo else 1.0
                cells[:, j] = np.minimum(
                    ((rows[:, j] - lo) / span * resolution).astype(np.int64),
                    resolution - 1,
                )
                shape.append(resolution)
        counters.values_loaded += rows.size
        counters.bitmask_ops += rows.size

        # reach[v] = some occupied cell <= v on every axis (cumulative
        # OR along each axis); a cell is certainly strictly dominated
        # iff reach holds at v - (1, ..., 1).
        occupied = np.zeros(shape, dtype=bool)
        occupied[tuple(cells.T)] = True
        reach = occupied.copy()
        for axis in range(k):
            reach = np.logical_or.accumulate(reach, axis=axis)
        counters.bitmask_ops += int(np.prod(shape)) * k
        counters.sequential_bytes += int(np.prod(shape)) * k

        shifted = np.zeros_like(reach)
        interior = tuple(slice(1, None) for _ in range(k))
        source = tuple(slice(None, -1) for _ in range(k))
        shifted[interior] = reach[source]
        strictly_dominated_cell = shifted

        survivor_mask = ~strictly_dominated_cell[tuple(cells.T)]
        survivors = [pid for pid, keep in zip(ids, survivor_mask) if keep]
        counters.extra["scalagon_prefiltered"] = (
            counters.extra.get("scalagon_prefiltered", 0)
            + len(ids)
            - len(survivors)
        )

        refined = BlockNestedLoops().compute(data, survivors, delta, counters)
        profile = MemoryProfile(
            data_bytes=8 * rows.size,
            flat_bytes=int(np.prod(shape)) // 8 + 8 * k * len(survivors),
        )
        return SkylineResult(
            refined.skyline, refined.extended_only, counters, profile
        )
