"""GNL and GGS — throughput-oriented GPU skyline baselines.

GNL (GPU nested loops, Choi et al.) assigns one thread per point and
brute-forces it against the whole dataset; GGS (GPU-friendly sorted
skyline, Bøgh et al. DaMoN'13) first sorts by a monotone score so every
comparison partner that can dominate appears earlier, halving the scan
and enabling earlier termination.  Both trade work-efficiency for
perfectly regular, coalesced access — the contrast against SkyAlign's
work-efficient tree (Section 3).  Execution is simulated at warp
granularity like :mod:`repro.skyline.skyalign`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.skyline.base import SkylineAlgorithm, SkylineResult
from repro.skyline.skyalign import WARP_SIZE

__all__ = ["GNL", "GGS"]


def _classify_scan(
    rows: np.ndarray,
    pos: int,
    limit: int,
    counters: Counters,
) -> tuple:
    """Warp-chunked scan of ``rows[:limit]`` against ``rows[pos]``.

    Returns ``(strict, dominated, work)`` with chunk-granular early
    exit on strict dominance, mirroring a GPU thread block's behaviour.
    """
    point = rows[pos]
    k = rows.shape[1]
    is_strict = False
    is_dominated = False
    work = 0
    for chunk_start in range(0, limit, WARP_SIZE):
        chunk_end = min(limit, chunk_start + WARP_SIZE)
        leaves = rows[chunk_start:chunk_end]
        count = chunk_end - chunk_start
        counters.dominance_tests += count
        counters.values_loaded += 2 * k * count
        counters.sequential_bytes += 8 * k * count
        work += count
        lt = np.all(leaves < point, axis=1)
        if bool(np.any(lt)):
            is_strict = True
            is_dominated = True
            break
        if not is_dominated:
            le = np.all(leaves <= point, axis=1)
            eq = np.all(leaves == point, axis=1)
            if bool(np.any(le & ~eq)):
                is_dominated = True
    return is_strict, is_dominated, work


class GNL(SkylineAlgorithm):
    """GPU nested loops: every point against the full dataset."""

    name = "gnl"
    parallel = True
    architecture = "gpu"

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        dims = dims_of(delta)
        rows = data[np.asarray(ids)][:, dims]
        n = len(ids)
        task_units: List[int] = []
        skyline: List[int] = []
        extras: List[int] = []
        for pos in range(n):
            strict, dominated, work = _classify_scan(rows, pos, n, counters)
            task_units.append(work)
            if strict:
                continue
            (extras if dominated else skyline).append(ids[pos])
        counters.tasks += n
        profile = MemoryProfile(data_bytes=8 * rows.size)
        return SkylineResult(skyline, extras, counters, profile, task_units)


class GGS(SkylineAlgorithm):
    """GPU sorted skyline: monotone sort, then prefix-only scans."""

    name = "ggs"
    parallel = True
    architecture = "gpu"

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        dims = dims_of(delta)
        ids_arr = np.asarray(ids)
        rows_all = data[ids_arr][:, dims]
        order = np.argsort(rows_all.sum(axis=1), kind="stable")
        rows = rows_all[order]
        sorted_ids = ids_arr[order]
        counters.values_loaded += rows.size
        counters.sequential_bytes += 8 * rows.size

        n = len(ids)
        task_units: List[int] = []
        skyline: List[int] = []
        extras: List[int] = []
        for pos in range(n):
            # Dominators have strictly smaller sums; scanning the whole
            # equal-or-smaller prefix is sufficient (equal-sum points
            # cannot dominate, and self-comparison is inert).
            strict, dominated, work = _classify_scan(rows, pos, pos + 1, counters)
            task_units.append(max(1, work))
            if strict:
                continue
            (extras if dominated else skyline).append(int(sorted_ids[pos]))
        counters.tasks += n
        profile = MemoryProfile(
            data_bytes=8 * rows.size, flat_bytes=8 * n
        )
        return SkylineResult(skyline, extras, counters, profile, task_units)
