"""PSkyline — naive divide-and-conquer parallel skyline (Im/Park).

The dataset is split horizontally into one block per (simulated) core;
each block's local S+-classification is computed independently (an SFS
pass), then blocks are merged pairwise by cross-filtering.  The paper
cites this family as the baseline that better partitioning (APSkyline,
Hybrid) improves upon; we include it both as an SDSC hook candidate and
for the ablation benches.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.skyline.base import SkylineAlgorithm, SkylineResult
from repro.skyline.sfs import SortFilterSkyline

__all__ = ["PSkyline"]

#: ``(id, dominated)`` classified member lists exchanged between merges.
Classified = List[Tuple[int, bool]]


class PSkyline(SkylineAlgorithm):
    """Block-parallel divide & conquer skyline."""

    name = "pskyline"
    parallel = True
    architecture = "cpu"

    def __init__(self, blocks: int = 8):
        if blocks < 1:
            raise ValueError(f"block count must be positive, got {blocks}")
        self.blocks = blocks

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        dims = dims_of(delta)
        k = len(dims)
        blocks = min(self.blocks, len(ids))
        chunks = [list(chunk) for chunk in np.array_split(np.asarray(ids), blocks)]
        local = SortFilterSkyline()

        classified: List[Classified] = []
        task_units: List[int] = []
        for chunk in chunks:
            if not len(chunk):
                continue
            before = counters.dominance_tests
            result = local.compute(data, [int(c) for c in chunk], delta, counters)
            task_units.append(counters.dominance_tests - before)
            members = [(pid, False) for pid in result.skyline]
            members += [(pid, True) for pid in result.extended_only]
            classified.append(members)
        counters.tasks += len(classified)
        counters.sync_points += 1

        # Pairwise merge rounds (a reduction tree).
        while len(classified) > 1:
            merged: List[Classified] = []
            for i in range(0, len(classified) - 1, 2):
                merged.append(
                    _merge(data, dims, classified[i], classified[i + 1], counters)
                )
            if len(classified) % 2:
                merged.append(classified[-1])
            classified = merged
            counters.sync_points += 1

        final = classified[0]
        profile = MemoryProfile(
            data_bytes=8 * k * len(ids),
            flat_bytes=8 * k * sum(len(c) for c in chunks) // max(1, blocks),
        )
        skyline = [pid for pid, dom in final if not dom]
        extras = [pid for pid, dom in final if dom]
        return SkylineResult(skyline, extras, counters, profile, task_units)


def _merge(
    data: np.ndarray,
    dims: List[int],
    left: Classified,
    right: Classified,
    counters: Counters,
) -> Classified:
    """Cross-filter two classified lists into one."""
    out: Classified = []
    for side, other in ((left, right), (right, left)):
        if not other:
            out.extend(side)
            continue
        other_rows = data[np.asarray([pid for pid, _ in other])][:, dims]
        for pid, dominated in side:
            point = data[pid][dims]
            lt = np.all(other_rows < point, axis=1)
            strict_hits = np.flatnonzero(lt)
            if strict_hits.size:
                counters.dominance_tests += int(strict_hits[0]) + 1
                counters.values_loaded += 2 * len(dims) * (int(strict_hits[0]) + 1)
                continue
            counters.dominance_tests += len(other)
            counters.values_loaded += 2 * len(dims) * len(other)
            counters.random_bytes += 8 * len(dims) * len(other)
            if not dominated:
                le = np.all(other_rows <= point, axis=1)
                eq = np.all(other_rows == point, axis=1)
                dominated = bool(np.any(le & ~eq))
            out.append((pid, dominated))
    return out
