"""Common interface of all skyline algorithms.

Every algorithm classifies a point set under subspace δ-dominance into
the skyline, the extended-skyline extras and the (strictly dominated)
rest — the ``(L[δ], L+[δ])`` pair that the lattice templates consume.
Results carry the operation counters and memory profile the simulated
hardware layer needs, plus (for parallel algorithms) the per-task work
units from which a device simulator derives parallel makespan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.bitmask import full_space
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile

__all__ = ["SkylineResult", "SkylineAlgorithm"]


@dataclass
class SkylineResult:
    """Outcome of one skyline computation.

    ``skyline`` and ``extended_only`` are disjoint sorted id lists;
    their union is ``S+_δ``.  ``task_units`` (parallel algorithms only)
    lists one abstract work unit per parallel task — tiles for Hybrid,
    points for SkyAlign — used by the device simulators for makespan.
    """

    skyline: List[int]
    extended_only: List[int]
    counters: Counters
    profile: MemoryProfile = field(default_factory=MemoryProfile)
    task_units: Optional[List[int]] = None

    @property
    def extended(self) -> List[int]:
        """``S+_δ`` — the union of skyline and extras, sorted."""
        return sorted(self.skyline + self.extended_only)


class SkylineAlgorithm(ABC):
    """Base class: subspace skyline + extended skyline of a point set."""

    #: Short name used in reports and benchmark tables.
    name: str = "abstract"
    #: Whether the algorithm exposes intra-query data parallelism
    #: (an SDSC hook) or is inherently single-threaded (an STSC hook).
    parallel: bool = False
    #: Which architecture the algorithm targets ("cpu" or "gpu"); the
    #: templates validate hooks against their specialisation with this.
    architecture: str = "cpu"

    def compute(
        self,
        data: np.ndarray,
        ids: Optional[Sequence[int]] = None,
        delta: Optional[int] = None,
        counters: Optional[Counters] = None,
    ) -> SkylineResult:
        """Classify ``ids`` (default: all rows) under δ-dominance."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if np.isnan(data).any():
            raise ValueError(
                "data contains NaN: dominance is undefined for NaN values"
            )
        d = data.shape[1]
        delta = full_space(d) if delta is None else delta
        if not 0 < delta <= full_space(d):
            raise ValueError(f"invalid subspace {delta} for d={d}")
        ids = list(range(len(data))) if ids is None else list(ids)
        counters = counters if counters is not None else Counters()
        if not ids:
            return SkylineResult([], [], counters)
        result = self._compute(data, ids, delta, counters)
        result.skyline.sort()
        result.extended_only.sort()
        return result

    @abstractmethod
    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        """Algorithm body; inputs validated, ``ids`` non-empty."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, parallel={self.parallel})"
