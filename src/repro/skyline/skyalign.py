"""SkyAlign — the work-efficient GPU skyline of Bøgh et al. (PVLDB'15).

The paper's SDSC GPU hook (Section 6.1).  SkyAlign replaces recursive
partitioning with a *statically defined* global tree (medians and
quartiles), so every thread's traversal is the same leaf-order scan of
flat label arrays: coalesced loads and minimal branch divergence.  A
point is ruled out the moment a scanned stretch proves transitive
strict dominance; otherwise a dominance test runs only for leaves whose
labels neither prove nor exclude dominance.

Execution is simulated at warp granularity: leaves are scanned in
chunks of 32, early exit happens at chunk boundaries, and a chunk where
only some lanes need a dominance test records a branch divergence —
these counts drive the GPU cost model.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hardware.config import WARP_SIZE
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.partitioning.static_tree import StaticTree
from repro.skyline.base import SkylineAlgorithm, SkylineResult

__all__ = ["SkyAlign", "WARP_SIZE"]


class SkyAlign(SkylineAlgorithm):
    """Static-tree GPU-paradigm skyline with warp-granular execution."""

    name = "skyalign"
    parallel = True
    architecture = "gpu"

    def __init__(self, levels: int = 2):
        if levels not in (2, 3):
            raise ValueError(f"SkyAlign uses 2 (or 3) tree levels, got {levels}")
        self.levels = levels

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        tree = StaticTree(data, ids, delta, levels=self.levels, counters=counters)
        n = len(tree)
        k = tree.k
        full_local = (1 << k) - 1
        rows = tree.rows

        strict = np.zeros(n, dtype=bool)
        dominated = np.zeros(n, dtype=bool)
        task_units: List[int] = []

        for pos in range(n):
            point = rows[pos]
            strict_masks = tree.leaf_strict_masks(pos)
            prune_masks = tree.leaf_prune_masks(pos)
            counters.mask_tests += n
            counters.values_loaded += n
            counters.sequential_bytes += 8 * n

            is_strict = False
            is_dominated = False
            work = n  # label loads
            for chunk_start in range(0, n, WARP_SIZE):
                chunk_end = min(n, chunk_start + WARP_SIZE)
                chunk_strict = strict_masks[chunk_start:chunk_end]
                chunk_prune = prune_masks[chunk_start:chunk_end]
                if np.any(chunk_strict == full_local):
                    is_strict = True
                    is_dominated = True
                    break
                # Lanes that still need an exact test: labels neither
                # prove dominance nor exclude it.
                need = np.flatnonzero(chunk_prune == 0)
                if need.size == 0:
                    continue
                if need.size < chunk_end - chunk_start:
                    counters.branch_divergences += 1
                # Warp vote true: every lane performs the DT together.
                leaves = rows[chunk_start:chunk_end]
                count = chunk_end - chunk_start
                counters.dominance_tests += count
                counters.values_loaded += 2 * k * count
                counters.sequential_bytes += 8 * k * count
                work += count
                lt = np.all(leaves < point, axis=1)
                if bool(np.any(lt)):
                    is_strict = True
                    is_dominated = True
                    break
                if not is_dominated:
                    le = np.all(leaves <= point, axis=1)
                    eq = np.all(leaves == point, axis=1)
                    if bool(np.any(le & ~eq)):
                        is_dominated = True
            strict[pos] = is_strict
            dominated[pos] = is_dominated
            task_units.append(work)

        counters.tasks += n
        profile = MemoryProfile(
            data_bytes=8 * k * n,
            shared_flat_bytes=tree.memory_bytes(),
        )
        skyline = [int(tree.ids[pos]) for pos in range(n) if not dominated[pos]]
        extras = [
            int(tree.ids[pos])
            for pos in range(n)
            if dominated[pos] and not strict[pos]
        ]
        return SkylineResult(skyline, extras, counters, profile, task_units)
