"""APSkyline — angle-based partitioned parallel skyline (Liknes et al.).

The partitioning-strategy improvement over PSkyline that the paper
cites among SDSC's candidate hooks (Sections 3, 5.1): instead of
splitting the data horizontally (which concentrates skyline candidates
unevenly), points are split by *angle* around the origin, so every
partition sees a comparable slice of the skyline surface and local
skylines stay balanced — smaller merge inputs and better load balance.

Partition key: the first hyperspherical angle of the (positive-orthant
shifted) point, bucketed by quantiles so partitions are equally sized
by count; the balance benefit shows in the task-unit spread, which the
device simulator consumes.  The paper notes APSkyline "has not been
shown to scale beyond four dimensions" — above that, this
implementation simply behaves like its PSkyline fallback.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bitmask import dims_of
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.skyline.base import SkylineAlgorithm, SkylineResult
from repro.skyline.pskyline import _merge
from repro.skyline.sfs import SortFilterSkyline

__all__ = ["APSkyline"]


class APSkyline(SkylineAlgorithm):
    """Angle-partitioned divide & conquer skyline."""

    name = "apskyline"
    parallel = True
    architecture = "cpu"

    def __init__(self, partitions: int = 8):
        if partitions < 1:
            raise ValueError(f"partition count must be positive, got {partitions}")
        self.partitions = partitions

    def _compute(
        self,
        data: np.ndarray,
        ids: List[int],
        delta: int,
        counters: Counters,
    ) -> SkylineResult:
        dims = dims_of(delta)
        k = len(dims)
        rows = data[np.asarray(ids)][:, dims]
        counters.sequential_bytes += 8 * rows.size

        partitions = min(self.partitions, len(ids))
        if k >= 2 and partitions > 1:
            # First hyperspherical angle of the origin-shifted point:
            # atan2 of the tail norm against the first coordinate.
            shifted = rows - rows.min(axis=0) + 1e-12
            tail = np.sqrt((shifted[:, 1:] ** 2).sum(axis=1))
            angles = np.arctan2(tail, shifted[:, 0])
            counters.values_loaded += rows.size
            edges = np.quantile(angles, np.linspace(0, 1, partitions + 1)[1:-1])
            assignment = np.searchsorted(edges, angles)
        else:
            assignment = np.arange(len(ids)) % partitions

        local = SortFilterSkyline()
        classified = []
        task_units: List[int] = []
        for partition in range(partitions):
            member_ids = [
                pid for pid, bucket in zip(ids, assignment) if bucket == partition
            ]
            if not member_ids:
                continue
            before = counters.dominance_tests
            result = local.compute(data, member_ids, delta, counters)
            task_units.append(max(1, counters.dominance_tests - before))
            members = [(pid, False) for pid in result.skyline]
            members += [(pid, True) for pid in result.extended_only]
            classified.append(members)
        counters.tasks += len(classified)
        counters.sync_points += 1

        while len(classified) > 1:
            merged = []
            for i in range(0, len(classified) - 1, 2):
                merged.append(
                    _merge(data, dims, classified[i], classified[i + 1], counters)
                )
            if len(classified) % 2:
                merged.append(classified[-1])
            classified = merged
            counters.sync_points += 1

        final = classified[0] if classified else []
        profile = MemoryProfile(
            data_bytes=8 * rows.size,
            flat_bytes=8 * k * len(ids) // max(1, partitions),
        )
        skyline = [pid for pid, dominated in final if not dominated]
        extras = [pid for pid, dominated in final if dominated]
        return SkylineResult(skyline, extras, counters, profile, task_units)
