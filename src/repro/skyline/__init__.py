"""Skyline algorithms: baselines and template hook implementations."""

from repro.skyline.accelerated import KernelSkyline
from repro.skyline.apskyline import APSkyline
from repro.skyline.base import SkylineAlgorithm, SkylineResult
from repro.skyline.bnl import BlockNestedLoops
from repro.skyline.bskytree import BSkyTree
from repro.skyline.gpu_baselines import GGS, GNL
from repro.skyline.hybrid import Hybrid
from repro.skyline.osp import OSP
from repro.skyline.pskyline import PSkyline
from repro.skyline.registry import DEFAULT_HOOKS, default_hook
from repro.skyline.scalagon import Scalagon
from repro.skyline.sfs import SortFilterSkyline
from repro.skyline.skyalign import SkyAlign
from repro.skyline.vmpsp import VMPSP

__all__ = [
    "SkylineAlgorithm",
    "SkylineResult",
    "BlockNestedLoops",
    "SortFilterSkyline",
    "PSkyline",
    "APSkyline",
    "Scalagon",
    "BSkyTree",
    "OSP",
    "VMPSP",
    "Hybrid",
    "SkyAlign",
    "GNL",
    "GGS",
    "KernelSkyline",
    "ALGORITHMS",
    "DEFAULT_HOOKS",
    "default_hook",
]

#: Registry of all skyline algorithm classes by name.
ALGORITHMS = {
    algorithm.name: algorithm
    for algorithm in (
        BlockNestedLoops,
        SortFilterSkyline,
        PSkyline,
        APSkyline,
        Scalagon,
        BSkyTree,
        OSP,
        VMPSP,
        Hybrid,
        SkyAlign,
        GNL,
        GGS,
    )
}
