"""Ad-hoc and query-relative skyline computation."""

from repro.query.dynamic import (
    dynamic_skycube,
    dynamic_skyline,
    dynamic_topk,
    dynamic_transform,
)
from repro.query.subsky import SubskyIndex

__all__ = [
    "SubskyIndex",
    "dynamic_skycube",
    "dynamic_skyline",
    "dynamic_topk",
    "dynamic_transform",
]
