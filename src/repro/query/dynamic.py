"""Dynamic skylines and dynamic skycubes (metric-style queries).

Section 4.2.1 notes that STSC is the only template that still applies
in settings where no parallel skyline algorithm exists, citing dynamic
skyline queries in metric spaces [7].  A *dynamic* skyline is computed
relative to a query point ``q``: point ``p`` dominates ``p'`` iff
``|p_i - q_i| <= |p'_i - q_i|`` on every dimension (strict somewhere) —
"closest to my ideal on every criterion".

Because the transform ``p ↦ |p - q|`` is per-point and per-dimension,
every algorithm in this library applies verbatim to the transformed
space; this module packages that: one-shot dynamic skylines, and a
dynamic *skycube* materialised with a pluggable skycube algorithm
(defaulting to STSC, as the paper suggests for exotic settings).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.bitmask import parse_subspace
from repro.core.skycube import Skycube
from repro.engine import fast_skyline
from repro.skycube.base import SkycubeAlgorithm
from repro.templates.stsc import STSC

__all__ = [
    "dynamic_transform",
    "dynamic_skyline",
    "dynamic_skycube",
    "dynamic_topk",
]

#: A subspace given either as a mask or in any textual form that
#: :func:`repro.core.bitmask.parse_subspace` accepts ("0b101", "5", "0,2").
SubspaceLike = Union[int, str]


def _as_delta(delta: Optional[SubspaceLike], d: int) -> Optional[int]:
    if isinstance(delta, str):
        return parse_subspace(delta, d)
    return delta


def dynamic_transform(data: np.ndarray, query: Sequence[float]) -> np.ndarray:
    """Per-dimension distances to the query point (smaller = better)."""
    data = np.asarray(data, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if query.shape != (data.shape[1],):
        raise ValueError(
            f"query must have {data.shape[1]} dimensions, got {query.shape}"
        )
    if np.isnan(query).any():
        raise ValueError("query contains NaN")
    return np.abs(data - query)


def dynamic_skyline(
    data: np.ndarray,
    query: Sequence[float],
    delta: Optional[SubspaceLike] = None,
) -> List[int]:
    """Ids of the dynamic skyline of ``data`` relative to ``query``."""
    transformed = dynamic_transform(data, query)
    return [
        int(i)
        for i in fast_skyline(
            transformed, _as_delta(delta, transformed.shape[1])
        )
    ]


def dynamic_topk(
    data: np.ndarray,
    query: Sequence[float],
    k: int = 10,
    delta: Optional[SubspaceLike] = None,
) -> List[int]:
    """The ``k`` dynamic-skyline points closest to ``query``.

    The serving layer's ``topk-dynamic`` endpoint: the dynamic skyline
    relative to ``query`` in subspace ``delta``, ranked by L1 distance
    over the active dimensions (ties by id).  Pareto-optimality picks
    the candidates; the distance rank orders them for presentation.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    transformed = dynamic_transform(data, query)
    mask = _as_delta(delta, transformed.shape[1])
    ids = fast_skyline(transformed, mask)
    if mask is None:
        active = transformed[ids]
    else:
        dims = [i for i in range(transformed.shape[1]) if mask & (1 << i)]
        active = transformed[np.ix_(ids, dims)]
    distance = active.sum(axis=1)
    ranked = sorted(zip(distance.tolist(), (int(i) for i in ids)))
    return [pid for _, pid in ranked[:k]]


def dynamic_skycube(
    data: np.ndarray,
    query: Sequence[float],
    algorithm: Optional[SkycubeAlgorithm] = None,
    max_level: Optional[int] = None,
) -> Skycube:
    """The dynamic skycube relative to ``query``: every subspace's
    dynamic skyline, materialised.

    Defaults to STSC — the template the paper singles out as the one
    that ports to settings like this without a parallel per-setting
    algorithm (its hook just runs on the transformed space).
    """
    algorithm = algorithm if algorithm is not None else STSC()
    transformed = dynamic_transform(data, query)
    run = algorithm.materialise(transformed, max_level=max_level)
    # Attach the *original* rows so point queries return real tuples.
    return Skycube(
        run.skycube.store,
        data=np.asarray(data, dtype=np.float64),
        max_level=max_level,
    )
