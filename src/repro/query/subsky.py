"""SUBSKY-style ad-hoc subspace skyline queries (Tao, Xiao & Pei).

The alternative to materialisation the paper contrasts against
(Section 3): instead of building the skycube, index the raw data once
and evaluate each subspace skyline on demand.  Points are assigned to
anchor points and ordered, per anchor, by their L∞ distance to it; a
query scans each anchor's list in increasing distance and stops early
using the property that a point cannot be dominated by points whose
distance-derived bound exceeds its own threshold.

Our simplified-but-sound variant keeps the structure (anchors +
depth-sorted lists + early termination) with a provable stop rule.
With ``f(p) = max_i (a_i - p_i)`` (the L∞ depth of p below its anchor),
``q ≺ p`` implies ``f(q) >= f(p)``, so scanning *descending* by f sees
every point's full-space dominators first.  Moreover, every entry
remaining after depth bound ``b`` satisfies ``p_i >= a_i - b`` on
*all* dimensions; once some window point w is strictly below the
virtual corner ``a - b`` on every dimension of δ, w strictly dominates
every remaining entry of the list and the scan stops.

The scan always compares against the current window (BNL-style), so it
is exact regardless of pruning quality; pruning only saves work.  The
paper's observation that the approach "does not perform well for
d > 5" shows up directly in the counters, which is what the ad-hoc vs
materialised bench demonstrates.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.bitmask import dims_of, full_space
from repro.instrument.counters import Counters

__all__ = ["SubskyIndex"]


class SubskyIndex:
    """Anchor-ordered index answering ad-hoc subspace skylines."""

    def __init__(self, data: np.ndarray, num_anchors: int = 4, seed: int = 0):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty 2-D dataset, got shape {data.shape}"
            )
        if np.isnan(data).any():
            raise ValueError("data contains NaN")
        if num_anchors < 1:
            raise ValueError(f"need at least one anchor, got {num_anchors}")
        self.data = data
        self.n, self.d = data.shape
        rng = np.random.default_rng(seed)
        # Anchors: per-dimension high quantiles jittered apart, so that
        # f(p) below is non-negative for almost all points.
        base = np.quantile(data, 0.95, axis=0)
        self.anchors = base[None, :] + rng.random((num_anchors, self.d)) * 0.05

        # Assign each point to the anchor minimising its L∞ "depth".
        depth = np.stack(
            [np.max(anchor - data, axis=1) for anchor in self.anchors]
        )  # (anchors, n)
        self.assignment = np.argmin(depth, axis=0)
        self._lists: List[np.ndarray] = []
        self._depths: List[np.ndarray] = []
        for a in range(num_anchors):
            member_ids = np.flatnonzero(self.assignment == a)
            # Descending depth: full-space dominators come first.
            order = np.argsort(-depth[a][member_ids], kind="stable")
            self._lists.append(member_ids[order])
            self._depths.append(depth[a][member_ids][order])

    def subspace_skyline(
        self, delta: int, counters: Optional[Counters] = None
    ) -> List[int]:
        """Exact ``S_δ`` ids, computed on demand (no materialisation)."""
        if not 0 < delta <= full_space(self.d):
            raise ValueError(f"invalid subspace {delta} for d={self.d}")
        counters = counters if counters is not None else Counters()
        dims = dims_of(delta)
        window_ids: List[int] = []
        window_rows: List[np.ndarray] = []
        # min over inserted window points of max_{i∈δ}(w_i - a_i)
        # per anchor; stop a list once its depth bound b satisfies
        # b < -best[a] (then some window point strictly dominates the
        # whole remainder — see the module docstring).
        best = [np.inf] * len(self._lists)

        for a, ordered in enumerate(self._lists):
            anchor_proj = self.anchors[a][dims]
            for position, pid in enumerate(ordered):
                bound = float(self._depths[a][position])
                counters.mask_tests += 1
                if window_ids and bound < -best[a]:
                    break
                point = self.data[pid][dims]
                counters.values_loaded += len(dims)
                counters.sequential_bytes += 8 * len(dims)
                dominated = False
                if window_rows:
                    rows = np.asarray(window_rows)
                    le = np.all(rows <= point, axis=1)
                    eq = np.all(rows == point, axis=1)
                    counters.dominance_tests += len(window_rows)
                    counters.random_bytes += 8 * len(dims) * len(window_rows)
                    dominated = bool(np.any(le & ~eq))
                    # Reverse eviction keeps the window minimal.
                    ge = np.all(rows >= point, axis=1)
                    evict = ge & ~eq
                    if np.any(evict):
                        keep = ~evict
                        window_ids = [
                            w for w, k in zip(window_ids, keep) if k
                        ]
                        window_rows = [
                            w for w, k in zip(window_rows, keep) if k
                        ]
                if not dominated:
                    window_ids.append(int(pid))
                    window_rows.append(point)
                    for other, anchor_other in enumerate(self.anchors):
                        value = float(
                            np.max(point - anchor_other[dims])
                        )
                        if value < best[other]:
                            best[other] = value
        return sorted(window_ids)

    def memory_bytes(self) -> int:
        """Index size: one 8-byte entry per point plus the anchors."""
        return 8 * self.n + 8 * self.anchors.size
