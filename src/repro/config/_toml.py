"""Minimal TOML-subset parser used when :mod:`tomllib` is absent.

:mod:`tomllib` only ships with Python 3.11+; the CI matrix still runs
3.10.  Profiles need a tiny slice of TOML — ``[section]`` headers and
``key = scalar`` pairs — so rather than vendoring a full parser (or
adding a dependency, which the build forbids) this module implements
exactly that slice.  Anything fancier (arrays of tables, multi-line
strings, dotted keys) raises a :class:`ValueError` naming the line, so
a profile that needs real TOML fails loudly instead of being
misread.  On 3.11+ the real :mod:`tomllib` is always used instead.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["parse_toml_subset"]

_BOOLEANS = {"true": True, "false": False}


def _parse_scalar(text: str, lineno: int) -> Any:
    """One TOML scalar: string, boolean, integer, or float."""
    if len(text) >= 2 and text[0] in "\"'" and text[-1] == text[0]:
        body = text[1:-1]
        if text[0] in body:
            raise ValueError(
                f"line {lineno}: embedded quotes are not supported: {text!r}"
            )
        return body
    if text in _BOOLEANS:
        return _BOOLEANS[text]
    try:
        return int(text.replace("_", ""), 0)
    except ValueError:
        pass
    try:
        return float(text.replace("_", ""))
    except ValueError:
        raise ValueError(
            f"line {lineno}: cannot parse value {text!r} (only strings, "
            f"booleans, integers and floats are supported)"
        ) from None


def parse_toml_subset(text: str) -> Dict[str, Any]:
    """Parse ``[section]`` / ``key = scalar`` TOML into nested dicts."""
    root: Dict[str, Any] = {}
    current = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            if line.startswith("[[") or not line.endswith("]"):
                raise ValueError(
                    f"line {lineno}: unsupported table syntax: {line!r}"
                )
            name = line[1:-1].strip()
            if not name or "." in name or '"' in name or "'" in name:
                raise ValueError(
                    f"line {lineno}: unsupported section name: {line!r}"
                )
            current = root.setdefault(name, {})
            if not isinstance(current, dict):
                raise ValueError(
                    f"line {lineno}: section {name!r} clashes with a key"
                )
            continue
        if "=" not in line:
            raise ValueError(f"line {lineno}: expected 'key = value': {line!r}")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if not key or '"' in key or "'" in key:
            raise ValueError(f"line {lineno}: unsupported key: {key!r}")
        if value and value[0] in "\"'":
            closing = value.find(value[0], 1)
            if closing == -1:
                raise ValueError(
                    f"line {lineno}: unterminated string for {key!r}"
                )
            rest = value[closing + 1:].strip()
            if rest and not rest.startswith("#"):
                raise ValueError(
                    f"line {lineno}: trailing content after string "
                    f"for {key!r}: {rest!r}"
                )
            value = value[: closing + 1]
        elif "#" in value:
            value = value.partition("#")[0].strip()
        if not value:
            raise ValueError(f"line {lineno}: missing value for {key!r}")
        current[key] = _parse_scalar(value, lineno)
    return root
