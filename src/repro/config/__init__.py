"""repro.config — validated deployment profiles for serve and engines.

One small file (TOML, or YAML when PyYAML is present) declares the
serve-tier and engine knobs of a deployment; :func:`load_profile`
parses and strictly validates it into a frozen, hashable
:class:`Profile`.  See :mod:`repro.config.profile` for the format and
the two invariants (empty profile = shipped defaults bit-for-bit;
invalid knobs fail naming the key).
"""

from repro.config.profile import (
    DEFAULT_PROFILE,
    EngineSection,
    FilterSection,
    Profile,
    ProfileError,
    ServeSection,
    ShardSection,
    TraceSection,
    apply_filter_gates,
    load_profile,
    profile_from_dict,
)

__all__ = [
    "DEFAULT_PROFILE",
    "EngineSection",
    "FilterSection",
    "Profile",
    "ProfileError",
    "ServeSection",
    "ShardSection",
    "TraceSection",
    "apply_filter_gates",
    "load_profile",
    "profile_from_dict",
]
