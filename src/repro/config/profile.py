"""Deployment profiles: strictly validated serve/engine tuning files.

A profile is a small TOML (or YAML, when PyYAML happens to be
installed) file with up to five sections — ``[serve]``, ``[engine]``,
``[filter]``, ``[trace]``, ``[shard]`` — every one of them optional::

    [serve]
    window_ms = 1.0
    max_batch = 128

    [engine]
    executor = "process"
    workers = 8

    [trace]
    path = "traces/prod.jsonl"

    [shard]
    shards = 4
    partitioner = "grid"

Two invariants the tests pin down:

* **Empty file = current behaviour, bit-for-bit.**  Every knob's
  default equals the corresponding CLI/constructor default, so an
  empty profile (or no profile at all) changes nothing.
* **Strict validation.**  An unknown section or key, a wrong type, or
  an out-of-range value raises :class:`ProfileError` *naming the key*
  (with a did-you-mean suggestion for typos) — a typo'd knob can never
  silently deploy the defaults.

Consumers: ``python -m repro serve --profile prod.toml`` (explicit
CLI flags still win over the profile) and
:func:`repro.experiments.runner.build_run` (the profile fills the
executor/workers/engine arguments left at their defaults).
:class:`Profile` is frozen and hashable so memoised consumers can key
caches on it directly.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_PROFILE",
    "ProfileError",
    "ServeSection",
    "EngineSection",
    "FilterSection",
    "TraceSection",
    "ShardSection",
    "Profile",
    "profile_from_dict",
    "load_profile",
    "apply_filter_gates",
]


class ProfileError(ValueError):
    """A profile failed validation; the message names the bad key."""


# -- section models (defaults == current CLI/constructor defaults) -----


@dataclass(frozen=True)
class ServeSection:
    """``[serve]`` — the batching/admission knobs of the TCP tier."""

    host: str = "127.0.0.1"
    port: int = 7171
    window_ms: float = 2.0
    max_batch: int = 64
    max_pending: int = 1024
    max_level: Optional[int] = None
    live: bool = False
    #: With ``live``: full snapshot rebuild after this many
    #: copy-on-write delta generations (bounds version-chain sharing).
    compact_every: int = 64


@dataclass(frozen=True)
class EngineSection:
    """``[engine]`` — compute backend selection.

    ``engine = None`` means "the consumer's own default": ``serve``
    resolves it to ``"packed"``, ``build_run`` to the instrumented
    per-point sweep — exactly what each does without a profile.
    ``backend = None`` keeps the numpy kernel backend; any of
    :data:`repro.engine.jit.BACKEND_CHOICES` selects a compiled one
    (unavailable choices degrade to numpy with a warning).
    """

    engine: Optional[str] = None
    executor: str = "serial"
    workers: Optional[int] = None
    backend: Optional[str] = None


@dataclass(frozen=True)
class FilterSection:
    """``[filter]`` — the octant-path prefilter gates.

    ``None`` leaves :data:`repro.engine.kernels.PREFILTER_MIN_ROWS`
    and :data:`~repro.engine.kernels.PREFILTER_MAX_PATHS` untouched.
    """

    prefilter_min_rows: Optional[int] = None
    prefilter_max_paths: Optional[float] = None


@dataclass(frozen=True)
class TraceSection:
    """``[trace]`` — the jsonl execution-trace sink (off by default)."""

    path: Optional[str] = None
    flush_every: int = 64


@dataclass(frozen=True)
class ShardSection:
    """``[shard]`` — the scatter–gather tier (off by default).

    ``shards = 0`` keeps the single-process serve path; any positive
    count routes ``serve`` through :mod:`repro.shard`.
    ``worker_timeout_s`` bounds every coordinator↔worker conversation
    (bootstrap ready included) before the shard is declared dead.
    """

    shards: int = 0
    partitioner: str = "grid"
    worker_timeout_s: float = 30.0


@dataclass(frozen=True)
class Profile:
    """One validated deployment profile (all sections optional)."""

    serve: ServeSection = ServeSection()
    engine: EngineSection = EngineSection()
    filter: FilterSection = FilterSection()
    trace: TraceSection = TraceSection()
    shard: ShardSection = ShardSection()
    source: Optional[str] = None

    def describe(self) -> str:
        """One line for startup banners: the non-default knobs only."""
        parts = []
        for section_name in ("serve", "engine", "filter", "trace", "shard"):
            section = getattr(self, section_name)
            for field in fields(section):
                value = getattr(section, field.name)
                if value != field.default:
                    parts.append(f"{section_name}.{field.name}={value}")
        origin = self.source or "<defaults>"
        if not parts:
            return f"profile {origin}: defaults"
        return f"profile {origin}: " + " ".join(parts)


DEFAULT_PROFILE = Profile()


# -- validation --------------------------------------------------------

#: ``section -> key -> (types, validator)``.  ``types`` is the accepted
#: python types; the validator returns an error string or None.
_INT = (int,)
_NUMBER = (int, float)
_STR = (str,)
_BOOL = (bool,)


def _positive(value: Any) -> Optional[str]:
    return None if value >= 1 else f"must be >= 1, got {value}"


def _non_negative(value: Any) -> Optional[str]:
    return None if value >= 0 else f"must be >= 0, got {value}"


def _port(value: Any) -> Optional[str]:
    return None if 0 <= value <= 65535 else f"must be 0..65535, got {value}"


def _fraction(value: Any) -> Optional[str]:
    return None if 0 < value <= 1 else f"must be in (0, 1], got {value}"


def _executor(value: Any) -> Optional[str]:
    from repro.engine.parallel import EXECUTORS

    if value in EXECUTORS:
        return None
    return f"must be one of {', '.join(EXECUTORS)}; got {value!r}"


def _engine(value: Any) -> Optional[str]:
    from repro.engine.kernels import SKYCUBE_ENGINES

    if value in SKYCUBE_ENGINES:
        return None
    return f"must be one of {', '.join(SKYCUBE_ENGINES)}; got {value!r}"


def _backend(value: Any) -> Optional[str]:
    from repro.engine.jit import BACKEND_CHOICES

    if value in BACKEND_CHOICES:
        return None
    return f"must be one of {', '.join(BACKEND_CHOICES)}; got {value!r}"


def _partitioner(value: Any) -> Optional[str]:
    from repro.shard.plan import PARTITIONER_NAMES

    if value in PARTITIONER_NAMES:
        return None
    return (
        f"must be one of {', '.join(PARTITIONER_NAMES)}; got {value!r}"
    )


def _positive_seconds(value: Any) -> Optional[str]:
    return None if value > 0 else f"must be > 0, got {value}"


def _any(value: Any) -> Optional[str]:
    return None


_SCHEMA: Dict[str, Dict[str, Tuple[Tuple[type, ...], Any]]] = {
    "serve": {
        "host": (_STR, _any),
        "port": (_INT, _port),
        "window_ms": (_NUMBER, _non_negative),
        "max_batch": (_INT, _positive),
        "max_pending": (_INT, _positive),
        "max_level": (_INT, _non_negative),
        "live": (_BOOL, _any),
        "compact_every": (_INT, _positive),
    },
    "engine": {
        "engine": (_STR, _engine),
        "executor": (_STR, _executor),
        "workers": (_INT, _positive),
        "backend": (_STR, _backend),
    },
    "filter": {
        "prefilter_min_rows": (_INT, _non_negative),
        "prefilter_max_paths": (_NUMBER, _fraction),
    },
    "trace": {
        "path": (_STR, _any),
        "flush_every": (_INT, _positive),
    },
    "shard": {
        "shards": (_INT, _non_negative),
        "partitioner": (_STR, _partitioner),
        "worker_timeout_s": (_NUMBER, _positive_seconds),
    },
}

_SECTION_TYPES = {
    "serve": ServeSection,
    "engine": EngineSection,
    "filter": FilterSection,
    "trace": TraceSection,
    "shard": ShardSection,
}


def _suggest(name: str, known: Any) -> str:
    matches = difflib.get_close_matches(name, list(known), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def _build_section(name: str, raw: Any, source: str) -> Any:
    if not isinstance(raw, Mapping):
        raise ProfileError(
            f"{source}: section [{name}] must be a table of keys, "
            f"got {type(raw).__name__}"
        )
    schema = _SCHEMA[name]
    values: Dict[str, Any] = {}
    for key, value in raw.items():
        if key not in schema:
            raise ProfileError(
                f"{source}: unknown key '{name}.{key}'"
                + _suggest(str(key), schema)
            )
        types, validator = schema[key]
        # bool is an int subclass; reject it for the numeric knobs.
        if isinstance(value, bool) and types is not _BOOL:
            raise ProfileError(
                f"{source}: '{name}.{key}' must be "
                f"{'/'.join(t.__name__ for t in types)}, got a boolean"
            )
        if not isinstance(value, types):
            raise ProfileError(
                f"{source}: '{name}.{key}' must be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__} ({value!r})"
            )
        problem = validator(value)
        if problem is not None:
            raise ProfileError(f"{source}: '{name}.{key}' {problem}")
        values[key] = value
    return _SECTION_TYPES[name](**values)


def profile_from_dict(
    data: Mapping[str, Any], source: str = "<profile>"
) -> Profile:
    """Validate a parsed profile mapping into a :class:`Profile`."""
    if not isinstance(data, Mapping):
        raise ProfileError(
            f"{source}: profile must be a table of sections, "
            f"got {type(data).__name__}"
        )
    sections: Dict[str, Any] = {}
    for name, raw in data.items():
        if name not in _SCHEMA:
            raise ProfileError(
                f"{source}: unknown section [{name}]"
                + _suggest(str(name), _SCHEMA)
            )
        sections[name] = _build_section(name, raw, source)
    return Profile(source=source, **sections)


# -- file loading ------------------------------------------------------


def _parse_toml(text: str, source: str) -> Dict[str, Any]:
    try:
        import tomllib  # Python 3.11+
    except ImportError:
        from repro.config._toml import parse_toml_subset

        try:
            return parse_toml_subset(text)
        except ValueError as error:
            raise ProfileError(f"{source}: {error}") from None
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise ProfileError(f"{source}: invalid TOML: {error}") from None


def _parse_yaml(text: str, source: str) -> Dict[str, Any]:
    try:
        import yaml
    except ImportError:
        raise ProfileError(
            f"{source}: YAML profiles need PyYAML, which is not "
            f"installed — use TOML instead"
        ) from None
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as error:
        raise ProfileError(f"{source}: invalid YAML: {error}") from None
    if data is None:
        return {}
    if not isinstance(data, dict):
        raise ProfileError(
            f"{source}: profile must be a mapping of sections, "
            f"got {type(data).__name__}"
        )
    return data


def load_profile(path: str) -> Profile:
    """Load and validate a ``.toml``/``.yaml``/``.yml`` profile file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ProfileError(f"cannot read profile {path}: {error}") from None
    lowered = str(path).lower()
    if lowered.endswith((".yaml", ".yml")):
        data = _parse_yaml(text, str(path))
    else:
        data = _parse_toml(text, str(path))
    return profile_from_dict(data, source=str(path))


# -- applying sections -------------------------------------------------


def apply_filter_gates(profile: Profile) -> None:
    """Install the ``[filter]`` gates into :mod:`repro.engine.kernels`.

    Only explicitly-set gates are written; an empty section leaves the
    module constants exactly as shipped.
    """
    from repro.engine import kernels

    if profile.filter.prefilter_min_rows is not None:
        kernels.PREFILTER_MIN_ROWS = profile.filter.prefilter_min_rows
    if profile.filter.prefilter_max_paths is not None:
        kernels.PREFILTER_MAX_PATHS = profile.filter.prefilter_max_paths
