"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure/table of the paper: it times the
regeneration (pytest-benchmark, single round — the workload cache in
``repro.experiments.runner`` makes repeated rounds meaningless), writes
the result tables under ``results/`` and asserts the *shape* of the
paper's finding (who wins, by what direction, where behaviour flips).
Absolute numbers are not expected to match the paper's testbed; see
EXPERIMENTS.md.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture
def regenerate(benchmark):
    """Run an experiment module once under timing; save its tables."""

    def _regenerate(module, stem):
        tables = benchmark.pedantic(
            lambda: module.run(quick=True), rounds=1, iterations=1
        )
        from repro.experiments.report import results_dir

        directory = results_dir()
        paths = []
        for index, table in enumerate(tables):
            suffix = "" if len(tables) == 1 else f"_{chr(ord('a') + index)}"
            paths.append(table.save(f"{stem}{suffix}.txt", directory))
        return tables

    return _regenerate
