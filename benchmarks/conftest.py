"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure/table of the paper: it times the
regeneration (pytest-benchmark, single round — the workload cache in
``repro.experiments.runner`` makes repeated rounds meaningless), writes
the result tables under ``results/`` and asserts the *shape* of the
paper's finding (who wins, by what direction, where behaviour flips).
Absolute numbers are not expected to match the paper's testbed; see
EXPERIMENTS.md.

Two CI-oriented options (used by the smoke job in
``.github/workflows/ci.yml``):

* ``--quick`` shrinks workloads so a bench finishes in well under a
  minute, relaxing magnitude assertions accordingly (direction/shape
  assertions stay);
* ``--executor process`` additionally routes template materialisation
  through the real multicore backend (:mod:`repro.engine.parallel`) and
  asserts it agrees with the serial reference — a cheap end-to-end
  guard against process-pool regressions;
* ``--backend`` pins the kernel backend for the backend-aware benches
  (strict: an unavailable choice fails the bench rather than silently
  falling back — the CI jit-smoke job passes ``--backend numba`` as its
  gate).  Without it the bench picks the fastest available backend and
  annotates the row when that is the numpy fallback.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="tiny workloads + relaxed magnitude asserts (CI smoke)",
    )
    # tests/conftest.py registers the same option for the chaos suite;
    # tolerate the duplicate when both conftests load in one run.
    try:
        parser.addoption(
            "--executor",
            choices=["serial", "process"],
            default="serial",
            help="execution backend exercised by the executor-aware benches",
        )
    except ValueError:
        pass
    try:
        parser.addoption(
            "--backend",
            default=None,
            help="kernel backend for the backend-aware benches (strict: "
            "fails if unavailable); default picks the fastest available",
        )
    except ValueError:
        pass


@pytest.fixture
def quick(request):
    """True when the CI smoke job asked for tiny workloads."""
    return request.config.getoption("--quick")


@pytest.fixture
def executor(request):
    """The execution backend under test: "serial" or "process"."""
    return request.config.getoption("--executor")


@pytest.fixture
def backend_option(request):
    """Explicit ``--backend`` choice, or None for fastest-available."""
    return request.config.getoption("--backend")


@pytest.fixture
def regenerate(benchmark):
    """Run an experiment module once under timing; save its tables."""

    def _regenerate(module, stem):
        tables = benchmark.pedantic(
            lambda: module.run(quick=True), rounds=1, iterations=1
        )
        from repro.experiments.report import results_dir

        directory = results_dir()
        paths = []
        for index, table in enumerate(tables):
            suffix = "" if len(tables) == 1 else f"_{chr(ord('a') + index)}"
            paths.append(table.save(f"{stem}{suffix}.txt", directory))
        return tables

    return _regenerate
