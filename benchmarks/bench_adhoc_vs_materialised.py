"""Ad-hoc subspace queries (SUBSKY) vs the materialised skycube.

The contrast motivating materialisation (Section 3): an index that
evaluates each subspace skyline on demand pays per query — and its
pruning collapses as dimensionality grows ("does not perform well for
d > 5") — whereas the skycube answers from memory.
"""

from repro.core.bitmask import all_subspaces
from repro.data.generator import generate
from repro.experiments.report import Table
from repro.instrument.counters import Counters
from repro.query import SubskyIndex
from repro.templates import MDMC


def test_adhoc_vs_materialised(benchmark):
    table = Table(
        "Ad-hoc (SUBSKY) vs materialised skycube query work",
        ["d", "adhoc DTs / query", "adhoc values / query",
         "materialise DTs once", "queries to amortise"],
        notes=["the ad-hoc index degrades with d; materialisation "
               "amortises over the 2^d - 1 possible queries"],
    )

    def sweep():
        rows = []
        for d in (3, 5, 7):
            data = generate("independent", 500, d, seed=13)
            index = SubskyIndex(data)
            adhoc = Counters()
            queries = 0
            for delta in all_subspaces(d):
                got = index.subspace_skyline(delta, adhoc)
                queries += 1
            build = Counters()
            run = MDMC("cpu").materialise(data, counters=build)
            # Cross-check a few subspaces between the two systems.
            for delta in (1, (1 << d) - 1):
                assert list(run.skycube.skyline(delta)) == (
                    index.subspace_skyline(delta)
                )
            amortise = build.dominance_tests / max(
                1, adhoc.dominance_tests / queries
            )
            rows.append(
                (d, adhoc.dominance_tests / queries,
                 adhoc.values_loaded / queries,
                 build.dominance_tests, amortise)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        table.add_row(*row)
    table.save("adhoc_vs_materialised.txt")

    # Per-query ad-hoc work grows with d (the paper's d > 5 breakdown)...
    per_query = [row[1] for row in rows]
    assert per_query[-1] > per_query[0]
    # ...and materialisation amortises within far fewer queries than
    # the skycube answers.
    for d, _, _, _, amortise in rows:
        assert amortise < (2**d - 1) * 64
