"""Figure 11: cycles per instruction."""

from repro.experiments import fig11


def test_fig11_cpi(regenerate):
    cpi, creep = regenerate(fig11, "fig11")

    # PQ has by far the worst compute throughput, and it worsens
    # substantially across sockets; the templates stay below it.
    for algorithm in ("ST", "SD", "MD"):
        assert cpi.cell("PQ", "1 socket") > cpi.cell(algorithm, "1 socket")
        assert cpi.cell("PQ", "2 sockets") > cpi.cell(algorithm, "2 sockets")
    assert cpi.cell("PQ", "2 sockets") > 1.3 * cpi.cell("PQ", "1 socket"), (
        cpi.format()
    )

    # PQ's CPI creeps up with core count (compute-bound sequentially,
    # memory-bound in parallel); MD's stays comparatively flat.
    pq_series = creep.column("PQ CPI")
    md_series = creep.column("MD CPI")
    assert pq_series[-1] > 1.1 * pq_series[0], creep.format()
    assert (md_series[-1] - md_series[0]) < (pq_series[-1] - pq_series[0]), (
        creep.format()
    )
