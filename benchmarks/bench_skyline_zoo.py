"""Comparison of every skyline algorithm's work profile.

Not a paper figure per se, but the substrate behind the hook choices
of Sections 5–6: the point-based partitioning algorithms trade DTs for
MTs; the throughput-oriented GPU baselines do far more DTs with far
more regular access; the balanced pivot beats the random one.
"""

from repro.data.generator import generate
from repro.experiments.report import Table
from repro.instrument.counters import Counters
from repro.skyline import ALGORITHMS


def test_skyline_zoo(benchmark):
    data = generate("independent", 800, 6, seed=7)

    def profile_all():
        table = Table(
            "Skyline algorithm work profiles ((I), n=800, d=6)",
            ["algorithm", "DTs", "MTs", "seq bytes", "rand bytes",
             "divergences"],
        )
        counters_by_name = {}
        for name, cls in sorted(ALGORITHMS.items()):
            counters = Counters()
            cls().compute(data, counters=counters)
            counters_by_name[name] = counters
            table.add_row(
                name,
                counters.dominance_tests,
                counters.mask_tests,
                counters.sequential_bytes,
                counters.random_bytes,
                counters.branch_divergences,
            )
        return table, counters_by_name

    table, counters = benchmark.pedantic(profile_all, rounds=1, iterations=1)
    table.save("skyline_zoo.txt")

    # Work-efficiency ordering (Sections 3, 5, 6).
    assert counters["bskytree"].dominance_tests < counters["bnl"].dominance_tests
    assert counters["hybrid"].dominance_tests < counters["bnl"].dominance_tests
    assert counters["ggs"].dominance_tests < counters["gnl"].dominance_tests
    # The balanced pivot needs no more DTs than the random one.
    assert (
        counters["bskytree"].dominance_tests
        <= 1.3 * counters["osp"].dominance_tests
    )
    # GPU-paradigm algorithms stream (coalesced) rather than scatter.
    for name in ("skyalign", "gnl", "ggs"):
        assert counters[name].sequential_bytes > counters[name].random_bytes
    # Only the warp-simulated algorithms record divergences.
    assert counters["skyalign"].branch_divergences >= 0
    assert counters["bnl"].branch_divergences == 0
