"""skylint incremental-cache timing gate.

Runs the full flow-aware pass (module rules + call-graph rules) over
``src/repro`` twice against one cache directory: once cold (empty
cache — every file parses, the project rules run) and once warm (no
file changed — findings replay from the cache without parsing a
single module).  Writes ``results/skylint_timing.txt`` and enforces
the performance contract that makes the linter usable as a save-hook:

* the warm full run finishes in under ``WARM_BUDGET_S`` seconds;
* the warm run is at least ``MIN_SPEEDUP``x faster than the cold run;
* both runs report identical findings (the cache never changes the
  answer, only the cost).
"""

import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import analyse_paths  # noqa: E402

WARM_BUDGET_S = 5.0
MIN_SPEEDUP = 5.0


def main() -> int:
    target = REPO / "src" / "repro"
    with tempfile.TemporaryDirectory(prefix="skylint-cache-") as tmp:
        cache_dir = Path(tmp)

        start = time.perf_counter()
        cold = analyse_paths([target], cache_dir=cache_dir)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = analyse_paths([target], cache_dir=cache_dir)
        warm_s = time.perf_counter() - start

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    failures = []
    if not warm.cache_stats or not warm.cache_stats.get("warm"):
        failures.append(f"warm run was not fully cached: {warm.cache_stats}")
    if [v.to_json() for v in warm.violations] != [
        v.to_json() for v in cold.violations
    ]:
        failures.append("warm and cold runs disagree on findings")
    if warm_s >= WARM_BUDGET_S:
        failures.append(
            f"warm full run took {warm_s:.2f}s (budget {WARM_BUDGET_S:.0f}s)"
        )
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"warm speedup {speedup:.1f}x is below {MIN_SPEEDUP:.0f}x"
        )

    lines = [
        "skylint incremental-cache timing (full src/repro run)",
        f"files analysed:      {cold.files_checked}",
        f"violations:          {len(cold.violations)}",
        f"cold run:            {cold_s:.3f} s (empty cache)",
        f"warm run:            {warm_s:.3f} s "
        f"(cache stats: {warm.cache_stats})",
        f"speedup:             {speedup:.1f}x "
        f"(required >= {MIN_SPEEDUP:.0f}x)",
        f"warm budget:         {warm_s:.3f} s < {WARM_BUDGET_S:.0f} s "
        f"required: {'PASS' if warm_s < WARM_BUDGET_S else 'FAIL'}",
    ]
    if failures:
        lines.append("FAILURES:")
        lines.extend(f"  - {failure}" for failure in failures)
    report = "\n".join(lines) + "\n"

    out = REPO / "results" / "skylint_timing.txt"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(report)
    print(report, end="")

    if failures:
        print("bench_skylint_timing: FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
