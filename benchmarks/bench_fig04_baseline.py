"""Figure 4: the PQSkycube baseline adds no overhead over QSkycube."""

from repro.experiments import fig04


def test_fig04_baseline_parity(regenerate):
    by_n, by_d = regenerate(fig04, "fig04")
    # Paper: the single-threaded curves coincide.  PQ may be mildly
    # faster (earlier freeing) or slower (its retained trees cost a
    # little even single-threaded here), never far off.
    for table in (by_n, by_d):
        for ratio in table.column("pq/q ratio"):
            assert 0.7 <= ratio <= 1.45, table.format()
