"""Skycube representations: lattice vs HashCube vs ClosedSkycube.

Quantifies the storage story of Section 2.2 / Appendix B.1 on one
dataset: the lattice's redundancy, the HashCube's ~w-fold id sharing,
and the closed skycube's skyline deduplication — with identical query
answers from all three.
"""

from repro.core.bitmask import all_subspaces
from repro.core.closed import ClosedSkycube
from repro.core.hashcube import HashCube
from repro.core.skylists import SkylistCube
from repro.data.generator import generate
from repro.experiments.report import Table
from repro.skycube import QSkycube


def test_representations(benchmark):
    data = generate("independent", 600, 8, seed=11)

    def build_all():
        lattice = QSkycube().materialise(data).skycube.as_lattice()
        hashcube = HashCube.from_lattice(lattice, word_width=32)
        closed = ClosedSkycube.from_lattice(lattice)
        skylists = SkylistCube.from_lattice(lattice)
        return lattice, hashcube, closed, skylists

    lattice, hashcube, closed, skylists = benchmark.pedantic(
        build_all, rounds=1, iterations=1
    )

    table = Table(
        "Skycube representations ((I), n=600, d=8)",
        ["representation", "ids stored", "memory bytes"],
    )
    table.add_row("lattice", lattice.total_ids_stored(), lattice.memory_bytes())
    table.add_row(
        "hashcube (w=32)", hashcube.total_ids_stored(), hashcube.memory_bytes()
    )
    table.add_row("closed skycube", closed.total_ids_stored(), closed.memory_bytes())
    table.add_row("skylists", skylists.total_ids_stored(), skylists.memory_bytes())
    table.save("representations.txt")

    # All four answer identically.
    for delta in list(all_subspaces(8))[::17]:
        assert hashcube.skyline(delta) == lattice.skyline(delta)
        assert closed.skyline(delta) == lattice.skyline(delta)
        assert skylists.skyline(delta) == lattice.skyline(delta)

    # Paper's storage claims: the HashCube stores each id at most once
    # per 32 subspaces (order-of-magnitude smaller than the lattice).
    assert hashcube.total_ids_stored() * 4 < lattice.total_ids_stored()
    assert closed.total_ids_stored() <= lattice.total_ids_stored()
    assert skylists.total_ids_stored() <= lattice.total_ids_stored()
