"""Table 2: the real-data stand-ins expose the documented structure."""

from repro.experiments import table02


def test_table02_datasets(regenerate):
    (table,) = regenerate(table02, "table02")

    # Structural properties the evaluation depends on (Appendix A.1):
    # tiny extended skylines for NBA/HH, the majority of CT in S+,
    # a moderate fraction for WE.
    assert table.cell("NBA", "|S+|/n") < 0.25, table.format()
    assert table.cell("HH", "|S+|/n") < 0.15, table.format()
    assert table.cell("CT", "|S+|/n") > 0.5, table.format()
    assert 0.03 < table.cell("WE", "|S+|/n") < 0.6, table.format()

    # Dimensionalities match Table 2.
    assert table.cell("NBA", "d") == 8
    assert table.cell("HH", "d") == 6
    assert table.cell("CT", "d") == 10
    assert table.cell("WE", "d") == 15
