"""Figure 5: parallel scalability of the CPU specialisations."""

from repro.experiments import fig05


def test_fig05_thread_scaling(regenerate):
    left, right = regenerate(fig05, "fig05")

    # MD and ST scale well with physical cores on one socket...
    assert left.cell("MD", "t=10") > 5.0, left.format()
    assert left.cell("ST", "t=10") > 4.0, left.format()
    # ...and MD keeps scaling under hyper-threading, SD does not.
    assert left.cell("MD", "t=20") > left.cell("MD", "t=10"), left.format()
    assert left.cell("SD", "t=20") < left.cell("SD", "t=10"), left.format()

    # PQ loses speedup the moment the second socket is involved.
    assert right.cell("PQ", "t=10") < left.cell("PQ", "t=10"), (
        left.format() + right.format()
    )
    # MD is the most scalable algorithm on the full machine.
    for algorithm in ("PQ", "ST", "SD"):
        assert right.cell("MD", "t=20") > right.cell(algorithm, "t=20"), (
            right.format()
        )
    # PQ trails every template on two sockets.
    for algorithm in ("ST", "SD", "MD"):
        assert right.cell("PQ", "t=20") < right.cell(algorithm, "t=20"), (
            right.format()
        )
