"""Figure 12: cross-device work distribution."""

from repro.experiments import fig12


def test_fig12_device_share(regenerate):
    (table,) = regenerate(fig12, "fig12")

    for column in ("SD %", "MD %"):
        shares = table.column(column)
        assert abs(sum(shares) - 100.0) < 1.0, table.format()
        # Paper: every device (the CPU counted as one, as in the
        # figure's legend) contributes >= ~20% with a ~10-point range;
        # we allow a slightly wider band at the scaled size.
        assert min(shares) > 12.0, table.format()
        assert max(shares) < 40.0, table.format()
        assert max(shares) - min(shares) < 25.0, table.format()
