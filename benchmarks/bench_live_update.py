"""Live write path: delta publishes vs full-rebuild publishes.

Before this bench's subject existed, every live mutation republished
the entire snapshot: ``snapshot_arrays`` + ``HashCube.from_masks`` over
all ``n`` points — O(n) per insert/delete regardless of how little
moved.  The delta path publishes the same version chain incrementally:
the maintainer reports the exact
:class:`~repro.core.maintain.MaskDelta` of each mutation (affected
points found via the static-tree label prefilter, masks updated by the
closure-table folds of :mod:`repro.engine.delta`) and the next cube is
a copy-on-write :meth:`~repro.core.hashcube.HashCube.with_updates`
clone sharing every untouched word table, so publish cost tracks the
*moved* masks, not ``n``.

Bit-identity is asserted *before* any timing: after a warm-up mutation
mix, the delta-published snapshot must answer every one of the
``2^d - 1`` subspace skylines exactly like a from-scratch
``from_maintainer`` rebuild of the same maintainer state — and again
after the timed mutations.

Asserted shape: the mean delta publish (copy-on-write cube + delta
arrays + swap, the ``publish`` trace span) beats the mean full-rebuild
publish >= 10x at n=20k d=8 (>= 2x under ``--quick``, where n shrinks
toward fixed per-publish overheads).  End-to-end mutation costs
(maintainer delta sweep included) are reported alongside: inserts are
O(affected); deletes re-derive the beaten set's masks and carry the
write path's remaining O(affected x n) sweep.
"""

import time

import numpy as np

from repro.core.bitmask import full_space
from repro.data.generator import generate
from repro.experiments.report import Table
from repro.serve.snapshot import LiveUpdater, ServingSnapshot
from repro.trace.tracer import Tracer

MUTATIONS = 60
WARMUP = 20
REBUILD_SAMPLES = 10


class PublishRecorder(Tracer):
    """Collects the write path's publish/compact spans."""

    enabled = True

    def __init__(self):
        super().__init__()
        self.spans = []

    def emit(self, event):
        if event.stage in ("publish", "compact"):
            self.spans.append(event)


def assert_bit_identical(updater, holder):
    """Every subspace skyline of the delta chain == full rebuild."""
    rebuilt = ServingSnapshot.from_maintainer(
        updater.maintainer, holder.version, updater.word_width
    )
    current = holder.current
    assert sorted(current.ids.tolist()) == sorted(rebuilt.ids.tolist())
    for delta in range(1, full_space(current.d) + 1):
        assert current.skyline(delta) == rebuilt.skyline(delta), delta
    return full_space(current.d)


def mutation_mix(rng, updater, live_ids, d, count,
                 insert_times=None, delete_times=None):
    """Half inserts / half deletes, drawn from the data's value range."""
    for step in range(count):
        before = time.perf_counter()
        if live_ids and step % 2:
            victim = live_ids.pop(int(rng.integers(len(live_ids))))
            updater.delete(victim)
            if delete_times is not None:
                delete_times.append(time.perf_counter() - before)
        else:
            pid, _ = updater.insert(rng.random(d))
            live_ids.append(pid)
            if insert_times is not None:
                insert_times.append(time.perf_counter() - before)


def _mean(times):
    return sum(times) / len(times)


def _p99(times):
    ordered = sorted(times)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def test_live_update_publish(benchmark, quick):
    n = 2_000 if quick else 20_000
    d = 8
    data = generate("anticorrelated", n, d, seed=0)
    rng = np.random.default_rng(1)

    def measure():
        recorder = PublishRecorder()
        updater, holder = LiveUpdater.bootstrap(
            data, compact_every=10_000, tracer=recorder
        )
        live_ids = list(range(n))
        # Warm the version chain, then gate on bit-identity BEFORE any
        # number is recorded — a fast wrong publish is worthless.
        mutation_mix(rng, updater, live_ids, d, WARMUP)
        subspaces = assert_bit_identical(updater, holder)

        recorder.spans.clear()
        insert_times, delete_times = [], []
        mutation_mix(
            rng, updater, live_ids, d, MUTATIONS,
            insert_times=insert_times, delete_times=delete_times,
        )
        publish_times = [
            event.duration_ms / 1e3 for event in recorder.spans
        ]

        # The former write path: one full from_maintainer rebuild per
        # publish, timed on the exact same maintainer state.
        rebuild_times = []
        for _ in range(REBUILD_SAMPLES):
            before = time.perf_counter()
            ServingSnapshot.from_maintainer(
                updater.maintainer, holder.version, updater.word_width
            )
            rebuild_times.append(time.perf_counter() - before)

        # Identity still holds after the timed mutations.
        assert_bit_identical(updater, holder)
        return (
            publish_times, rebuild_times, insert_times, delete_times,
            subspaces, len(live_ids),
        )

    (
        publish_times, rebuild_times, insert_times, delete_times,
        subspaces, n_live,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    speedup = _mean(rebuild_times) / _mean(publish_times)

    table = Table(
        f"Live publish: delta vs full rebuild, anticorrelated "
        f"n={n} d={d} ({subspaces} subspaces, {n_live} live points)",
        ["stage", "mean ms", "p99 ms", "per-publish speedup"],
        notes=[
            "publish = copy-on-write cube + delta data/id arrays + "
            "swap (the 'publish' trace span); rebuild = the former "
            "full from_maintainer publish on the same state",
            "insert/delete rows are end-to-end mutations including "
            "the maintainer's delta sweep, for context",
            "bit-identity with a full rebuild asserted before and "
            "after timing, all subspaces",
        ],
    )
    table.add_row(
        "full rebuild publish",
        1e3 * _mean(rebuild_times), 1e3 * _p99(rebuild_times), 1.0,
    )
    table.add_row(
        "delta publish",
        1e3 * _mean(publish_times), 1e3 * _p99(publish_times), speedup,
    )
    table.add_row(
        "insert end-to-end",
        1e3 * _mean(insert_times), 1e3 * _p99(insert_times), float("nan"),
    )
    table.add_row(
        "delete end-to-end",
        1e3 * _mean(delete_times), 1e3 * _p99(delete_times), float("nan"),
    )
    table.save("live_update.txt")

    threshold = 2.0 if quick else 10.0
    assert speedup >= threshold, table.format()


def test_compaction_bounds_version_chain(quick):
    """Compaction resets the generation without changing answers."""
    n = 500 if quick else 2_000
    d = 6
    data = generate("independent", n, d, seed=3)
    updater, holder = LiveUpdater.bootstrap(data, compact_every=8)
    rng = np.random.default_rng(2)
    live_ids = list(range(n))
    mutation_mix(rng, updater, live_ids, d, 20)
    assert holder.current.cube.generation <= 8
    assert_bit_identical(updater, holder)
