"""Hardware sensitivity: which resource each algorithm depends on.

Not a paper figure, but the paper's causal claims in one experiment:
PQSkycube's performance hinges on L3 capacity and NUMA latency (its
pointer trees), while MDMC barely notices either (its static tree and
coalesced scans).  We re-simulate the same traces on machines with
halved/doubled L3 and with the NUMA latency factor switched off, and
assert the sensitivities point the way Section 7.2 argues.
"""

from dataclasses import replace

from repro.experiments.report import Table
from repro.experiments.runner import build_run
from repro.experiments.workloads import (
    DEFAULT_D,
    DEFAULT_DIST,
    DEFAULT_N,
    scaled_cpu,
)
from repro.hardware.simulate import simulate_cpu


def test_hardware_sensitivity(benchmark):
    base = scaled_cpu()
    half_l3 = replace(
        base, l3_bytes_per_socket=base.l3_bytes_per_socket // 2
    )
    double_l3 = replace(
        base, l3_bytes_per_socket=base.l3_bytes_per_socket * 2
    )
    no_numa = replace(base, numa_latency_factor=1.0)

    def sweep():
        table = Table(
            "Hardware sensitivity (10 cores, default workload): "
            "time vs the base machine",
            ["algorithm", "L3 halved", "L3 doubled",
             "NUMA latency off (2 sockets)"],
            notes=["ratios > 1 mean slower than on the base machine"],
        )
        rows = {}
        for algorithm in ("pqskycube", "stsc", "sdsc-cpu", "mdmc-cpu"):
            run = build_run(algorithm, DEFAULT_DIST, DEFAULT_N, DEFAULT_D)
            reference = simulate_cpu(run, base, threads=10, sockets=1).seconds
            reference_2s = simulate_cpu(run, base, threads=10, sockets=2).seconds
            rows[algorithm] = (
                simulate_cpu(run, half_l3, threads=10, sockets=1).seconds
                / reference,
                simulate_cpu(run, double_l3, threads=10, sockets=1).seconds
                / reference,
                simulate_cpu(run, no_numa, threads=10, sockets=2).seconds
                / reference_2s,
            )
            table.add_row(algorithm, *rows[algorithm])
        return table, rows

    table, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table.save("hardware_sensitivity.txt")

    # PQ is the most L3-sensitive algorithm; MD the least (Section 7.2:
    # cache-consciousness is what separates them).
    pq_half, pq_double, pq_numa = rows["pqskycube"]
    md_half, md_double, md_numa = rows["mdmc-cpu"]
    assert pq_half > md_half, table.format()
    assert pq_double < 1.0, "PQ should benefit from more L3"
    assert abs(md_half - 1.0) < 0.25, "MD should barely notice L3 size"
    # Removing the NUMA latency penalty helps PQ more than MD.
    assert pq_numa < 1.0, table.format()
    assert pq_numa < md_numa + 1e-9, table.format()
