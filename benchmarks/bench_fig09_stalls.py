"""Figure 9: stalled cycles with loads pending at L2/L3."""

from repro.experiments import fig09


def test_fig09_stalls(regenerate):
    l2, l3 = regenerate(fig09, "fig09")

    # Stall ordering mirrors CPI: PQ worst, MD best.
    for algorithm in ("ST", "SD", "MD"):
        assert l3.cell("PQ", "1 socket") > l3.cell(algorithm, "1 socket"), (
            l3.format()
        )
        assert l3.cell("MD", "1 socket") <= l3.cell(algorithm, "1 socket"), (
            l3.format()
        )

    # PQ is dramatically NUMA-affected; MD only minorly (paper: the
    # prefetcher cannot hide the intersocket latency for PQ).
    pq_growth = l3.cell("PQ", "2 sockets") / l3.cell("PQ", "1 socket")
    md_growth = l3.cell("MD", "2 sockets") / l3.cell("MD", "1 socket")
    assert pq_growth > 1.5, l3.format()
    assert md_growth < pq_growth, l3.format()
