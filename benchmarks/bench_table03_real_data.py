"""Table 3: execution times on the real-data stand-ins."""

from repro.experiments import table03
from repro.experiments.table03 import real_seconds


def test_table03_real_data(regenerate):
    (table,) = regenerate(table03, "table03")

    # MD is the best CPU algorithm on NBA, CT and WE (paper: "across
    # all datasets, MD performs the best").  The exception at our scale
    # is HH: its stand-in shrinks to ~1k ultra-correlated points whose
    # whole skycube costs < 0.25 ms for every method, and MD's fixed
    # setup dominates — recorded as a scale artefact in EXPERIMENTS.md.
    for dataset in ("NBA", "CT", "WE"):
        md = real_seconds("mdmc-cpu", dataset, "cpu")
        for other in ("qskycube", "pqskycube", "stsc", "sdsc-cpu"):
            assert md < real_seconds(other, dataset, "cpu"), (
                f"MD-CPU should win on {dataset}"
            )
    assert real_seconds("mdmc-cpu", "HH", "cpu") < 2e-3, (
        "HH is trivial at the scaled size for every method"
    )

    # The small NBA/HH inputs cannot occupy a GPU: SD is slower there
    # than on the CPU (paper: "SD is significantly slower on the GPU
    # than on the CPU for these workloads").
    for dataset in ("NBA", "HH"):
        assert real_seconds("sdsc-gpu", dataset, "gpu") > real_seconds(
            "sdsc-cpu", dataset, "cpu"
        ), f"SD-GPU should lose to SD-CPU on tiny {dataset}"

    # The large workloads benefit from the GPU and from cross-device
    # execution (paper: SD and MD "both benefit significantly").
    for dataset in ("CT", "WE"):
        assert real_seconds("mdmc-gpu", dataset, "all") < real_seconds(
            "mdmc-cpu", dataset, "cpu"
        ), f"cross-device MD should win on {dataset}"
