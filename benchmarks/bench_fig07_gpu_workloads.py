"""Figure 7: GPU and cross-device execution times across workloads."""

from repro.experiments import fig07
from repro.experiments.fig07 import all_seconds, gpu_seconds
from repro.experiments.workloads import N_SWEEP


def test_fig07_gpu_workloads(regenerate):
    tables = regenerate(fig07, "fig07")
    assert len(tables) == 6

    # MD outperforms SD on the GPU (paper: "MD outperforms SD:
    # especially for lower-dimensional cuboids ... SD struggles to
    # generate enough parallel tasks").
    for distribution in ("anticorrelated", "independent"):
        for n in N_SWEEP:
            assert gpu_seconds("mdmc-gpu", distribution, n, 8) < gpu_seconds(
                "sdsc-gpu", distribution, n, 8
            ), f"MD-GPU should beat SD-GPU on {distribution} n={n}"

    # The performance gap narrows as n grows (convergence in Fig 7).
    gap_small = gpu_seconds("sdsc-gpu", "independent", N_SWEEP[0], 8) / gpu_seconds(
        "mdmc-gpu", "independent", N_SWEEP[0], 8
    )
    gap_large = gpu_seconds("sdsc-gpu", "independent", N_SWEEP[-1], 8) / gpu_seconds(
        "mdmc-gpu", "independent", N_SWEEP[-1], 8
    )
    assert gap_large < gap_small, "SD-GPU should close in as n grows"

    # Cross-device execution beats the single GPU markedly on the
    # largest workload (paper: ~3x with 3 GPUs + CPU)...
    for algorithm in ("sdsc-gpu", "mdmc-gpu"):
        single = gpu_seconds(algorithm, "independent", N_SWEEP[-1], 8)
        combined = all_seconds(algorithm, "independent", N_SWEEP[-1], 8)
        assert combined < single / 1.8, f"{algorithm}: no cross-device gain"

    # ...but the small correlated workload cannot feed every device,
    # so the gain shrinks (paper: "the small extended skyline cannot
    # be distributed efficiently on (C)").
    c_single = gpu_seconds("mdmc-gpu", "correlated", N_SWEEP[0], 8)
    c_all = all_seconds("mdmc-gpu", "correlated", N_SWEEP[0], 8)
    i_single = gpu_seconds("mdmc-gpu", "independent", N_SWEEP[-1], 8)
    i_all = all_seconds("mdmc-gpu", "independent", N_SWEEP[-1], 8)
    assert (c_single / c_all) < (i_single / i_all), (
        "cross-device gain should shrink on correlated data"
    )
