"""The paper's headline: >150x over the sequential state of the art.

Conclusion / Section 7.2: deployed across the whole heterogeneous
ecosystem, the MDMC template accelerates skycube construction by more
than 150x relative to the single-threaded state of the art.  This
bench computes exactly that ratio on the default workload (scaled) and
asserts the order of magnitude.

With ``--quick`` the workload shrinks to CI-smoke size (and the
magnitude assertion relaxes with it); with ``--executor process`` the
bench additionally materialises MDMC on the real multicore backend and
asserts it matches the serial reference, so a broken pool fails CI
here before it can corrupt any longer run.
"""

from repro.experiments.report import Table
from repro.experiments.runner import build_run
from repro.experiments.workloads import (
    DEFAULT_D,
    DEFAULT_DIST,
    DEFAULT_N,
    scaled_cpu,
    scaled_platform,
)
from repro.hardware.simulate import simulate_cpu, simulate_heterogeneous


def test_headline_speedup(benchmark, quick, executor):
    n = 300 if quick else DEFAULT_N
    d = 6 if quick else DEFAULT_D

    def measure():
        sequential = simulate_cpu(
            build_run("qskycube", DEFAULT_DIST, n, d),
            scaled_cpu(),
            threads=1,
        ).seconds
        heterogeneous = simulate_heterogeneous(
            build_run("mdmc-gpu", DEFAULT_DIST, n, d),
            scaled_platform(),
        ).seconds
        return sequential, heterogeneous

    sequential, heterogeneous = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = sequential / heterogeneous
    table = Table(
        "Headline: cross-device MDMC vs single-threaded QSkycube",
        ["quantity", "value"],
        notes=["paper: > 150x on the full heterogeneous ecosystem"],
    )
    table.add_row("QSkycube, 1 thread (s)", sequential)
    table.add_row("MDMC, 2 sockets + 3 GPUs (s)", heterogeneous)
    table.add_row("speedup", speedup)
    table.save("headline.txt")

    if executor == "process":
        # Pool smoke: the real multicore backend must agree with the
        # serial reference on the very same workload.
        reference = build_run("mdmc-cpu", DEFAULT_DIST, n, d)
        pooled = build_run(
            "mdmc-cpu", DEFAULT_DIST, n, d, executor="process", workers=4
        )
        assert pooled.skycube == reference.skycube, (
            "process backend diverged from the serial reference"
        )

    threshold = 5 if quick else 100
    assert speedup > threshold, table.format()
