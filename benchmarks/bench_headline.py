"""The paper's headline: >150x over the sequential state of the art.

Conclusion / Section 7.2: deployed across the whole heterogeneous
ecosystem, the MDMC template accelerates skycube construction by more
than 150x relative to the single-threaded state of the art.  This
bench computes exactly that ratio on the default workload (scaled) and
asserts the order of magnitude.
"""

from repro.experiments.report import Table
from repro.experiments.runner import build_run
from repro.experiments.workloads import (
    DEFAULT_D,
    DEFAULT_DIST,
    DEFAULT_N,
    scaled_cpu,
    scaled_platform,
)
from repro.hardware.simulate import simulate_cpu, simulate_heterogeneous


def test_headline_speedup(benchmark):
    def measure():
        sequential = simulate_cpu(
            build_run("qskycube", DEFAULT_DIST, DEFAULT_N, DEFAULT_D),
            scaled_cpu(),
            threads=1,
        ).seconds
        heterogeneous = simulate_heterogeneous(
            build_run("mdmc-gpu", DEFAULT_DIST, DEFAULT_N, DEFAULT_D),
            scaled_platform(),
        ).seconds
        return sequential, heterogeneous

    sequential, heterogeneous = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = sequential / heterogeneous
    table = Table(
        "Headline: cross-device MDMC vs single-threaded QSkycube",
        ["quantity", "value"],
        notes=["paper: > 150x on the full heterogeneous ecosystem"],
    )
    table.add_row("QSkycube, 1 thread (s)", sequential)
    table.add_row("MDMC, 2 sockets + 3 GPUs (s)", heterogeneous)
    table.add_row("speedup", speedup)
    table.save("headline.txt")

    assert speedup > 100, table.format()
