"""End-to-end smoke test for ``python -m repro serve --shards N``.

Not a pytest module: this is the CI ``shard-smoke`` job's driver (and
``make shard-smoke`` locally).  It exercises the real sharded
deployment path — a coordinator *process* with two real shard worker
processes behind it, a real TCP socket, a real SIGTERM:

1. generate a dataset and start ``python -m repro serve --shards 2
   --partitioner grid`` with the jsonl tracer on, parsing the
   readiness banner for the bound port (and requiring the banner to
   name the shard layout);
2. require bit-identity: the served skyline of every probed subspace
   must equal the local single-process reference answer, and
   membership/top-k answers must match too;
3. check ``ping`` reports the shard layout and ``metrics`` embeds the
   per-shard liveness;
4. send SIGTERM and require a clean drain (exit 0, "drained, bye");
5. run ``python -m repro trace analyze`` over the trace and require
   the stitched fan-out: per-shard compute spans, merge barriers with
   straggler attribution, zero unclassified failures.

Exit status 0 means the whole sharded path works end to end.
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

import numpy as np  # noqa: E402

from repro.serve import ServeClient, ServingSnapshot  # noqa: E402

SHARDS = 2
QUERIES = 120
READY_PATTERN = re.compile(r"listening on [\d.]+:(\d+)")


def start_server(dataset, trace_path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", dataset,
         "--shards", str(SHARDS), "--partitioner", "grid",
         "--port", "0", "--window-ms", "2", "--trace", trace_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    banner_ok = False
    deadline = time.time() + 60
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(f"server exited early: {process.poll()}")
        sys.stdout.write(f"[server] {line}")
        if f"shards={SHARDS}" in line and "partitioner=grid" in line:
            banner_ok = True
        match = READY_PATTERN.search(line)
        if match:
            assert banner_ok, "readiness before the shard banner"
            return process, int(match.group(1))
    raise AssertionError("server never announced readiness")


def drive_queries(port, data, reference):
    n, d = data.shape
    full = (1 << d) - 1
    with ServeClient("127.0.0.1", port, timeout=30.0) as client:
        info = client.ping()
        assert info["shards"] == SHARDS, info
        assert info["alive"] == SHARDS, info
        assert info["partitioner"] == "grid", info
        assert info["n"] == n and info["d"] == d, info
        for i in range(QUERIES):
            kind = i % 10
            if kind < 4:
                delta = (full >> (i % d)) or 1
                assert client.skyline(delta) == list(
                    reference.skyline(delta)
                ), f"skyline mismatch at delta={delta:#b}"
            elif kind < 7:
                pid = (i * 13) % n
                assert client.membership(pid, full) == (
                    reference.membership(pid, full)
                ), f"membership mismatch at pid={pid}"
            else:
                q = [float((i * 7) % 50)] * d
                assert client.topk_dynamic(q, k=5) == (
                    reference.topk_dynamic(q, 5, None)
                ), f"topk mismatch at q={q[0]}"
        metrics = client.metrics()
    return metrics


def analyze_trace(trace_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro", "trace", "analyze", trace_path,
         "--json", "--fail-on", "unclassified"],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    assert result.returncode == 0, "trace analyze gated on failures"
    report = json.loads(result.stdout)
    spans = report["shard_compute_ms"]
    assert sorted(spans) == [str(s) for s in range(SHARDS)], (
        f"expected compute spans for every shard, got {sorted(spans)}"
    )
    barriers = report["merge_barriers"]
    assert barriers["merges"] >= 1, barriers
    attributed = sum(barriers["stragglers"].values())
    assert attributed == barriers["merges"], barriers
    assert report["unclassified"] == 0, report
    print(
        f"shard-smoke: {barriers['merges']} merge barriers, "
        f"stragglers {barriers['stragglers']}, "
        f"spans for shards {sorted(spans)}"
    )


def main():
    with tempfile.TemporaryDirectory() as tmp:
        dataset = os.path.join(tmp, "smoke.npy")
        trace_path = os.path.join(tmp, "trace.jsonl")
        subprocess.run(
            [sys.executable, "-m", "repro", "generate", "anticorrelated",
             "1500", "5", "--seed", "11", "--out", dataset],
            check=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        data = np.load(dataset)
        reference = ServingSnapshot.build(data, engine="packed-filtered")
        process, port = start_server(dataset, trace_path)
        try:
            metrics = drive_queries(port, data, reference)
            total = sum(metrics["requests"].values())
            assert total >= QUERIES, metrics["requests"]
            assert metrics["shards"]["alive"] == [True] * SHARDS, (
                metrics["shards"]
            )
            print(
                f"shard-smoke: {total} requests, bit-identical answers, "
                f"mean batch {metrics['mean_batch_size']:.2f}"
            )
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                remainder, _ = process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                raise AssertionError("server did not drain within 30s")
        sys.stdout.write(
            "".join(f"[server] {l}\n" for l in remainder.splitlines())
        )
        assert process.returncode == 0, f"exited {process.returncode}"
        assert "drained, bye" in remainder, remainder
        print("shard-smoke: clean SIGTERM drain, exit 0")
        analyze_trace(trace_path)


if __name__ == "__main__":
    main()
