"""End-to-end smoke test for the live write path of ``python -m repro serve``.

Not a pytest module: this is the CI ``live-smoke`` job's driver (and
``make live-smoke`` locally).  Where ``serve_smoke.py`` sprinkles a few
mutations into a read-heavy stream, this driver hammers the *delta
publish* machinery specifically — a real server process, a real TCP
socket, concurrent writers and readers:

1. generate a dataset and start ``python -m repro serve --live
   --trace PATH --compact-every 16`` on an ephemeral port (a small
   compaction interval so the smoke run crosses several rebuild
   boundaries);
2. run one mutator thread (insert a touch-up copy of a live point /
   delete one of its own inserts, through its own client connection)
   concurrently with two reader threads (skylines, memberships,
   ``skyline_diff`` probes against versions the mutator has already
   published), requiring zero untyped failures;
3. after the mutator has deleted every point it inserted, require
   ``skyline_diff`` over the whole mutation interval to be empty on
   every subspace probed — inserts and deletes must cancel exactly;
4. check the metrics endpoint saw at least one snapshot publish per
   mutation, send SIGTERM, and require a clean drain;
5. leave the jsonl trace on disk for the taxonomy gate
   (``python -m repro trace analyze --fail-on
   InternalError,unclassified`` — run as the job's next step).

Exit status 0 means the whole live path works; any assertion kills the
job.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.serve import ServeClient, ServeError  # noqa: E402

MUTATIONS = 40
READS_PER_THREAD = 150
READY_PATTERN = re.compile(r"listening on [\d.]+:(\d+)")


def start_server(dataset, trace_path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", dataset,
         "--port", "0", "--window-ms", "2", "--live",
         "--compact-every", "16", "--trace", trace_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    deadline = time.time() + 60
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(f"server exited early: {process.poll()}")
        sys.stdout.write(f"[server] {line}")
        match = READY_PATTERN.search(line)
        if match:
            return process, int(match.group(1))
    raise AssertionError("server never announced readiness")


class Mutator(threading.Thread):
    """Insert touch-up copies of live points, delete them again.

    Records every published version; the versions must be strictly
    increasing (one publish per mutation, in submission order on this
    single connection).
    """

    def __init__(self, port, d, n):
        super().__init__(name="mutator")
        self.port, self.d, self.n = port, d, n
        self.versions = []
        self.errors = []

    def run(self):
        try:
            with ServeClient("127.0.0.1", self.port, timeout=30.0) as client:
                own = []
                for i in range(MUTATIONS):
                    if own and i % 2:
                        version = client.delete(own.pop())
                    else:
                        response = client.request(
                            "insert", point=[0.25 + 0.5 * (i % 3)] * self.d
                        )
                        own.append(int(response["result"]["point_id"]))
                        version = int(response["snapshot_version"])
                    self.versions.append(version)
                while own:  # leave the dataset exactly as we found it
                    self.versions.append(client.delete(own.pop()))
        except Exception as error:  # noqa: BLE001 - smoke driver
            self.errors.append(repr(error))


class Reader(threading.Thread):
    """Skylines, memberships and diff probes against published versions."""

    def __init__(self, port, d, n, seed, mutator):
        super().__init__(name=f"reader-{seed}")
        self.port, self.d, self.n = port, d, n
        self.seed = seed
        self.mutator = mutator
        self.errors = []
        self.reads = 0

    def run(self):
        full = (1 << self.d) - 1
        try:
            with ServeClient("127.0.0.1", self.port, timeout=30.0) as client:
                for i in range(READS_PER_THREAD):
                    kind = (i + self.seed) % 4
                    try:
                        if kind == 0:
                            client.skyline((full >> (i % self.d)) or 1)
                        elif kind == 1:
                            client.membership(i % self.n, full)
                        elif kind == 2:
                            client.topk_dynamic([0.5] * self.d, k=5)
                        else:
                            versions = self.mutator.versions
                            if len(versions) >= 2:
                                client.skyline_diff(
                                    full, versions[0], versions[-1]
                                )
                        self.reads += 1
                    except ServeError as error:
                        # NotFound: membership of an id a racing delete
                        # removed.  Everything else is a failure.
                        if error.error_type != "NotFound":
                            self.errors.append((i, str(error)))
        except Exception as error:  # noqa: BLE001 - smoke driver
            self.errors.append(("connection", repr(error)))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="PATH", default="live-smoke.jsonl",
        help="jsonl execution trace path (gated by `trace analyze`)",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory() as tmp:
        dataset = os.path.join(tmp, "live-smoke.npy")
        subprocess.run(
            [sys.executable, "-m", "repro", "generate", "independent",
             "1500", "5", "--seed", "13", "--out", dataset],
            check=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        process, port = start_server(dataset, args.trace)
        try:
            with ServeClient("127.0.0.1", port, timeout=30.0) as client:
                info = client.ping()
                d, n = info["d"], info["n"]
                baseline = {
                    delta: client.skyline(delta)
                    for delta in (1, (1 << d) - 1)
                }
            mutator = Mutator(port, d, n)
            readers = [Reader(port, d, n, seed, mutator) for seed in (1, 2)]
            for thread in (mutator, *readers):
                thread.start()
            for thread in (mutator, *readers):
                thread.join(timeout=120)
                assert not thread.is_alive(), f"{thread.name} hung"

            assert not mutator.errors, mutator.errors
            for reader in readers:
                assert not reader.errors, (
                    f"{len(reader.errors)} failed reads: {reader.errors[:5]}"
                )
            versions = mutator.versions
            assert versions == sorted(set(versions)), (
                "publish versions not strictly increasing"
            )

            with ServeClient("127.0.0.1", port, timeout=30.0) as client:
                # Every insert was deleted again: from the bootstrap
                # version 0 to the final one the movement must cancel.
                for delta in (1, (1 << d) - 1, (1 << d) >> 1):
                    diff = client.skyline_diff(delta, 0, versions[-1])
                    assert diff == {"entered": [], "left": []}, (delta, diff)
                for delta, skyline in baseline.items():
                    assert client.skyline(delta) == skyline, delta
                metrics = client.metrics()
            assert metrics["snapshot_publishes"] >= len(versions), metrics
            assert metrics["snapshot_version"] == versions[-1], metrics
            reads = sum(reader.reads for reader in readers)
            print(
                f"live-smoke: {len(versions)} publishes "
                f"(final v{versions[-1]}), {reads} concurrent reads, "
                f"diff cancelled on every probed subspace"
            )
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                remainder, _ = process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                raise AssertionError("server did not drain within 30s")
        sys.stdout.write(
            "".join(f"[server] {l}\n" for l in remainder.splitlines())
        )
        assert process.returncode == 0, f"server exited {process.returncode}"
        assert "drained, bye" in remainder, remainder
        assert os.path.exists(args.trace), f"{args.trace} was never written"
        with open(args.trace) as handle:
            lines = sum(1 for _ in handle)
        assert lines >= len(versions), (
            f"trace has {lines} events for {len(versions)} publishes"
        )
        print(f"live-smoke: clean SIGTERM drain, {lines} trace events")


if __name__ == "__main__":
    main()
