"""Filtered packed sweep vs the plain packed engine, across A/I/C.

The acceptance bench for ``engine="packed-filtered"``: on correlated
n=50 000, d=8 the octant-path label prefilter must cut the end-to-end
``fast_skycube`` time to at least half of the plain packed engine's
(the ``S+`` filter phase dominates there and the prefilter collapses
it), while on anticorrelated data — where every gate correctly turns
the filtering off — the overhead must stay within 10%.  A fourth,
duplicate-heavy workload (3 distinct values, d=5 — the in-sweep
filter's design point, where the node directory stays coarse over S+)
exercises the in-sweep leaf filter, whose pruning tallies
(``pairs_pruned`` / ``leaves_skipped`` / ``label_bytes``) are recorded
in the table notes.

Every timed configuration is first verified bit-identical against the
plain packed engine; a filtered sweep that diverged would fail before
any number is reported.
"""

import time

from repro.data.generator import generate
from repro.engine.kernels import fast_skycube
from repro.experiments.report import Table
from repro.instrument.counters import Counters

#: Full-size floors: the correlated speedup the PR must deliver and the
#: worst slowdown tolerated where filtering cannot help.
CORRELATED_SPEEDUP_FLOOR = 2.0
ANTICORRELATED_REGRESSION_CEILING = 1.1


def test_filtered_packed_speedup(benchmark, quick):
    n, d = (3_000, 6) if quick else (50_000, 8)
    workloads = [
        ("correlated", generate("correlated", n, d, seed=7)),
        ("independent", generate("independent", n, d, seed=7)),
        ("anticorrelated", generate("anticorrelated", n, d, seed=7)),
        # Quantised values at moderate d: the coarse node directory
        # keeps most of S+ under few nodes, so the in-sweep leaf filter
        # engages and skips the majority of leaves per block.  (At
        # higher d the quantised S+ spreads over too many nodes and the
        # gates correctly fall back to the plain coder.)
        (
            "independent d=5, 3 distinct values",
            generate("independent", n, 5, seed=7, distinct_values=3),
        ),
    ]

    def measure():
        results = {}
        for name, data in workloads:
            start = time.perf_counter()
            packed_cube = fast_skycube(data, engine="packed")
            packed_s = time.perf_counter() - start
            counters = Counters()
            start = time.perf_counter()
            filtered_cube = fast_skycube(
                data, engine="packed-filtered", counters=counters
            )
            filtered_s = time.perf_counter() - start
            assert filtered_cube.store == packed_cube.store, (
                f"filtered engine diverged from packed on {name}"
            )
            results[name] = (packed_s, filtered_s, counters)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = Table(
        f"Filtered vs plain packed skycube engine: n={n} d={d}",
        ["workload", "packed s", "filtered s", "speedup"],
        notes=["every row verified bit-identical before timing"],
    )
    for name, (packed_s, filtered_s, counters) in results.items():
        table.add_row(name, packed_s, filtered_s, packed_s / filtered_s)
        pruning = {
            key: value
            for key, value in counters.as_dict().items()
            if value
            and key
            in ("pairs_pruned", "leaves_skipped", "label_bytes",
                "prefilter_dropped")
        }
        table.notes.append(f"{name}: {pruning or 'all filters gated off'}")
    table.save("filtered_packed.txt")

    corr_packed, corr_filtered, corr_counters = results["correlated"]
    anti_packed, anti_filtered, _ = results["anticorrelated"]
    # At quick/CI size per-call overheads dominate both ratios, so the
    # magnitude floors only bind at full size (bit-identity is always
    # strict, and the prefilter must still have engaged somewhere).
    assert corr_counters.extra.get("prefilter_dropped", 0) > 0, table.format()
    if not quick:
        assert corr_packed / corr_filtered > CORRELATED_SPEEDUP_FLOOR, (
            table.format()
        )
        assert (
            anti_filtered <= ANTICORRELATED_REGRESSION_CEILING * anti_packed
        ), table.format()
