"""Serving throughput: micro-batching vs one-request-at-a-time.

The serve layer's pitch is that concurrent queries coalesce: within a
batching window every distinct ``(op, arguments)`` is computed once
against one snapshot capture and fanned back out.  This bench drives
256 concurrent mixed queries (skyline probes over a small pool of hot
subspaces, O(1) membership probes, ad-hoc top-k passes) through an
in-process :class:`~repro.serve.service.SkycubeService` at windows of
0, 2 and 8 ms and compares against the true serial baseline — the same
requests awaited one at a time with batching disabled.

Asserted shape: the 2 ms window sustains at least 3x the serial
baseline's request rate at full size (relaxed under ``--quick``), and a
deliberately overloaded service sheds with typed ``Overloaded``
responses while its queue never exceeds the configured bound.
"""

import asyncio
import time

import numpy as np

from repro.data.generator import generate
from repro.experiments.report import Table
from repro.serve import (
    LiveUpdater,
    Request,
    ServingSnapshot,
    SkycubeService,
    SnapshotHolder,
)
from repro.trace import NULL_TRACER, JsonlTracer

CONCURRENCY = 256
WINDOWS_MS = (0.0, 2.0, 8.0)
HOT_SUBSPACES = 8
HOT_QUERIES = 4


def build_workload(data, d):
    """256 mixed requests: hot skylines, memberships, hot top-ks."""
    full = (1 << d) - 1
    deltas = [(full >> shift) or 1 for shift in range(HOT_SUBSPACES)]
    queries = [tuple(float(v) for v in data[i]) for i in range(HOT_QUERIES)]
    requests = []
    for i in range(CONCURRENCY):
        kind = i % 4
        if kind in (0, 1):  # half the load: hot subspace skylines
            requests.append(Request(op="skyline", delta=deltas[i % HOT_SUBSPACES]))
        elif kind == 2:  # distinct ids: no dedup win, O(1) probes
            requests.append(
                Request(op="membership", point_id=i % len(data),
                        delta=deltas[i % HOT_SUBSPACES])
            )
        else:  # hot ad-hoc top-k passes: the big dedup win
            requests.append(
                Request(op="topk_dynamic", q=queries[i % HOT_QUERIES], k=8)
            )
    return requests


async def run_serial(holder, requests):
    """The unbatched baseline: await each request before the next."""
    service = SkycubeService(holder, window=0.0, max_batch=1)
    await service.start()
    latencies = []
    start = time.perf_counter()
    for request in requests:
        before = time.perf_counter()
        response = await service.submit(request)
        assert response.ok, response
        latencies.append(time.perf_counter() - before)
    elapsed = time.perf_counter() - start
    await service.stop()
    return elapsed, latencies, service.metrics


async def run_concurrent(holder, requests, window, tracer=NULL_TRACER):
    """All 256 in flight at once through one batching service."""
    service = SkycubeService(
        holder, window=window, max_batch=64, max_pending=2 * CONCURRENCY,
        tracer=tracer,
    )
    await service.start()
    latencies = []

    async def timed(request):
        before = time.perf_counter()
        response = await service.submit(request)
        assert response.ok, response
        latencies.append(time.perf_counter() - before)

    start = time.perf_counter()
    await asyncio.gather(*(timed(request) for request in requests))
    elapsed = time.perf_counter() - start
    await service.stop()
    return elapsed, latencies, service.metrics


async def run_overload(holder, requests):
    """Tiny admission bound + huge window: sheds must be typed+bounded."""
    service = SkycubeService(holder, window=0.25, max_batch=512, max_pending=16)
    await service.start()
    responses = await asyncio.gather(
        *(service.submit(request) for request in requests)
    )
    await service.stop()
    return responses, service.metrics


def p99_ms(latencies):
    ordered = sorted(latencies)
    return 1000.0 * ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def test_serve_throughput(benchmark, quick):
    n = 2_000 if quick else 20_000
    d = 8
    data = generate("anticorrelated", n, d, seed=0)
    holder = SnapshotHolder(ServingSnapshot.build(data))
    requests = build_workload(data, d)

    def measure():
        results = {}
        elapsed, latencies, _ = asyncio.run(run_serial(holder, requests))
        results["serial"] = (elapsed, latencies)
        for window_ms in WINDOWS_MS:
            elapsed, latencies, metrics = asyncio.run(
                run_concurrent(holder, requests, window_ms / 1000.0)
            )
            results[window_ms] = (elapsed, latencies, metrics)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = Table(
        f"Serving throughput: {CONCURRENCY} concurrent mixed queries, "
        f"anticorrelated n={n} d={d}",
        ["configuration", "req/s", "p99 ms", "mean batch", "speedup"],
        notes=[
            "serial = one request awaited at a time, batching disabled; "
            "windows coalesce identical queries into one computation",
        ],
    )
    serial_elapsed, serial_latencies = results["serial"]
    serial_rate = CONCURRENCY / serial_elapsed
    table.add_row(
        "serial baseline", serial_rate, p99_ms(serial_latencies), 1.0, 1.0
    )
    for window_ms in WINDOWS_MS:
        elapsed, latencies, metrics = results[window_ms]
        table.add_row(
            f"window {window_ms:g} ms",
            CONCURRENCY / elapsed,
            p99_ms(latencies),
            metrics.mean_batch_size,
            serial_elapsed / elapsed,
        )
    table.save("serve_throughput.txt")

    # Acceptance floor: the 2 ms window beats one-at-a-time 3x at full
    # size.  Under --quick the per-query work shrinks toward scheduler
    # overhead, so only the direction is guarded.
    speedup = serial_elapsed / results[2.0][0]
    threshold = 1.5 if quick else 3.0
    assert speedup > threshold, table.format()

    # Overload: typed sheds, queue bound respected.
    responses, metrics = asyncio.run(run_overload(holder, requests))
    shed = [r for r in responses if not r.ok]
    assert shed, "overload run shed nothing"
    assert all(r.error == "Overloaded" for r in shed)
    assert metrics.shed == len(shed)
    assert metrics.peak_queue_depth <= 16


async def run_with_mutations(updater, holder, requests, window):
    """The read workload with a live mutation stream on the same service.

    The mutator models a touch-up stream: it inserts a slightly-worse
    copy of a random live point and later deletes it again, leaving the
    dataset as it found it.  Such points are *covered* — some live
    point is ``<=`` them on every dimension — which is the maintainer's
    cheap delta case, so the stream sustains a realistic write rate
    instead of serialising behind worst-case recomputes.  Returns
    ``(elapsed, read_latencies, writes_during_reads)``.
    """
    service = SkycubeService(
        holder, window=window, max_batch=64,
        max_pending=2 * CONCURRENCY, updater=updater,
    )
    await service.start()
    read_latencies = []
    reads_done = asyncio.Event()

    async def timed(request):
        before = time.perf_counter()
        response = await service.submit(request)
        assert response.ok, response
        read_latencies.append(time.perf_counter() - before)

    async def mutator():
        rng = np.random.default_rng(17)
        base_rows = holder.current.data
        d = base_rows.shape[1]
        own = []
        writes = 0
        while not reads_done.is_set():
            if own and writes % 2:
                response = await service.submit(
                    Request(op="delete", point_id=own.pop())
                )
            else:
                base = base_rows[int(rng.integers(len(base_rows)))]
                nudged = np.minimum(base + rng.random(d) * 0.05, 1.0)
                response = await service.submit(
                    Request(op="insert", point=tuple(map(float, nudged)))
                )
                own.append(response.result["point_id"])
            assert response.ok, response
            writes += 1
        # Drain the leftover inserts so the next round starts clean
        # (after the read clock has stopped).
        while own:
            response = await service.submit(
                Request(op="delete", point_id=own.pop())
            )
            assert response.ok, response
        return writes

    start = time.perf_counter()
    mutation_task = asyncio.create_task(mutator())
    await asyncio.gather(*(timed(request) for request in requests))
    elapsed = time.perf_counter() - start
    reads_done.set()
    writes = await mutation_task
    await service.stop()
    return elapsed, read_latencies, writes


def test_mixed_read_write_p99(benchmark, quick):
    """Read p99 under a live mutation stream: <= 10% over read-only.

    The same 256-client read workload, against a live
    (:class:`~repro.serve.LiveUpdater`-backed) service, with and
    without a concurrent insert/delete stream.  Alternating pairs and
    a best-of-rounds comparison (the pattern of
    :func:`test_trace_overhead`) keep allocator drift and scheduler
    noise out of the ratio; the <=10% ceiling is asserted at full size
    only — under ``--quick`` per-query work shrinks toward scheduler
    overhead and the numbers are recorded but not gated.
    """
    n = 2_000 if quick else 20_000
    d = 8
    rounds = 3 if quick else 5
    data = generate("anticorrelated", n, d, seed=0)
    requests = build_workload(data, d)
    updater, holder = LiveUpdater.bootstrap(data)

    def measure():
        read_only, mixed, write_counts = [], [], []
        for _ in range(rounds):
            _, latencies, _ = asyncio.run(
                run_concurrent(holder, requests, 0.002)
            )
            read_only.append(p99_ms(latencies))
            _, latencies, writes = asyncio.run(
                run_with_mutations(updater, holder, requests, 0.002)
            )
            mixed.append(p99_ms(latencies))
            write_counts.append(writes)
        return read_only, mixed, write_counts

    read_only, mixed, write_counts = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    best_read_only, best_mixed = min(read_only), min(mixed)
    regression = best_mixed / best_read_only - 1.0

    table = Table(
        f"Mixed read/write: {CONCURRENCY} concurrent reads vs the same "
        f"plus a mutation stream, anticorrelated n={n} d={d}, "
        f"best of {rounds}",
        ["configuration", "read p99 ms", "writes in flight", "regression"],
        notes=[
            "mutation stream: covered-point touch-up inserts + deletes "
            "through the same service (delta publishes on the write "
            "path); acceptance ceiling +10% read p99 at full size",
        ],
    )
    table.add_row("reads only", best_read_only, 0, "--")
    table.add_row(
        "reads + mutation stream", best_mixed,
        sum(write_counts) / len(write_counts),
        f"{100.0 * regression:+.2f}%",
    )
    table.save("serve_mixed_read_write.txt")

    assert sum(write_counts) >= rounds, "mutation stream never ran"
    if not quick:
        assert regression <= 0.10, table.format()


def test_trace_overhead(benchmark, quick, tmp_path):
    """Tracing must cost <= 3% of throughput when on, nothing when off.

    Same 256-client mixed workload as the throughput bench, 2 ms
    window, run in alternating untraced/traced pairs (so warmup and
    allocator drift hit both sides equally).  Overhead is compared on
    the best round of each side — the stable floor of an asyncio
    measurement — and the <=3% ceiling is asserted at full size only;
    under ``--quick`` the per-query work shrinks toward scheduler
    noise, so the numbers are recorded but not gated.
    """
    n = 2_000 if quick else 20_000
    d = 8
    rounds = 3 if quick else 5
    data = generate("anticorrelated", n, d, seed=0)
    holder = SnapshotHolder(ServingSnapshot.build(data))
    requests = build_workload(data, d)
    trace_path = str(tmp_path / "overhead.jsonl")

    def measure():
        untraced, traced, events = [], [], 0
        for _ in range(rounds):
            elapsed, _, _ = asyncio.run(
                run_concurrent(holder, requests, 0.002)
            )
            untraced.append(elapsed)
            tracer = JsonlTracer(trace_path, flush_every=64)
            try:
                elapsed, _, _ = asyncio.run(
                    run_concurrent(holder, requests, 0.002, tracer=tracer)
                )
            finally:
                tracer.close()
            traced.append(elapsed)
            events = tracer.emitted
        return untraced, traced, events

    untraced, traced, events = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    best_untraced, best_traced = min(untraced), min(traced)
    overhead = best_traced / best_untraced - 1.0

    table = Table(
        f"Tracing overhead: {CONCURRENCY} concurrent mixed queries, "
        f"window 2 ms, anticorrelated n={n} d={d}, best of {rounds}",
        ["configuration", "req/s", "elapsed ms", "overhead"],
        notes=[
            f"{events} jsonl events per traced run "
            f"(admit/batch/compute/respond); acceptance ceiling 3% "
            f"at full size",
        ],
    )
    table.add_row(
        "tracer off", CONCURRENCY / best_untraced,
        1000.0 * best_untraced, "--",
    )
    table.add_row(
        "jsonl tracer", CONCURRENCY / best_traced,
        1000.0 * best_traced, f"{100.0 * overhead:+.2f}%",
    )
    table.save("serve_trace_overhead.txt")

    assert events >= 3 * CONCURRENCY, "traced run recorded too few events"
    if not quick:
        assert overhead <= 0.03, table.format()
