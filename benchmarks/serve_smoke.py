"""End-to-end smoke test for ``python -m repro serve``.

Not a pytest module: this is the CI ``serve-smoke`` job's driver (and
``make serve-smoke`` locally).  It exercises the real deployment path —
a separate server *process*, a real TCP socket, a real SIGTERM:

1. generate a dataset and start ``python -m repro serve --live`` on an
   ephemeral port, parsing the readiness line for the bound port;
2. drive 500 mixed queries (skyline / membership / top-k / metrics,
   plus a few live inserts and deletes) through the blocking client,
   requiring zero untyped failures;
3. check the metrics endpoint reports the traffic and that batching
   actually coalesced something;
4. send SIGTERM and require a clean drain: exit code 0 and the
   "drained, bye" farewell on stdout.

Exit status 0 means the whole path works; any assertion kills the job.

``--trace PATH`` and ``--profile PATH`` are forwarded to the server
verbatim, so the CI ``trace-smoke`` job can run the exact same traffic
with the jsonl tracer on and feed the result to
``python -m repro trace analyze``.  With ``--trace`` the driver also
requires the trace file to be non-empty after the drain.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.serve import ServeClient, ServeError  # noqa: E402

QUERIES = 500
READY_PATTERN = re.compile(r"listening on [\d.]+:(\d+)")


def start_server(dataset, extra_args=()):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", dataset,
         "--port", "0", "--window-ms", "2", "--live", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    deadline = time.time() + 60
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited early: {process.poll()}"
            )
        sys.stdout.write(f"[server] {line}")
        match = READY_PATTERN.search(line)
        if match:
            return process, int(match.group(1))
    raise AssertionError("server never announced readiness")


def drive_queries(port):
    errors = []
    inserted = []
    with ServeClient("127.0.0.1", port, timeout=30.0) as client:
        info = client.ping()
        d = info["d"]
        full = (1 << d) - 1
        for i in range(QUERIES):
            kind = i % 10
            try:
                if kind < 4:
                    client.skyline((full >> (i % d)) or 1)
                elif kind < 7:
                    client.membership(i % info["n"], full)
                elif kind < 9:
                    client.topk_dynamic([0.5] * d, k=5)
                elif inserted and kind == 9 and i % 20 == 19:
                    client.delete(inserted.pop())
                else:
                    inserted.append(client.insert([0.5] * d))
            except ServeError as error:
                # Typed errors other than NotFound (a racing delete)
                # count as failures; untyped ones always do.
                if error.error_type != "NotFound":
                    errors.append((i, str(error)))
        metrics = client.metrics()
    return errors, metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="forward --trace PATH to the server (jsonl execution trace)",
    )
    parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="forward --profile PATH to the server (deployment profile)",
    )
    args = parser.parse_args()
    extra_args = []
    if args.profile:
        extra_args += ["--profile", args.profile]
    if args.trace:
        extra_args += ["--trace", args.trace]
    with tempfile.TemporaryDirectory() as tmp:
        dataset = os.path.join(tmp, "smoke.npy")
        subprocess.run(
            [sys.executable, "-m", "repro", "generate", "independent",
             "2000", "6", "--seed", "7", "--out", dataset],
            check=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        process, port = start_server(dataset, extra_args)
        try:
            errors, metrics = drive_queries(port)
            assert not errors, f"{len(errors)} failed queries: {errors[:5]}"
            total = sum(metrics["requests"].values())
            assert total >= QUERIES, metrics["requests"]
            assert metrics["batches"] >= 1, metrics
            assert metrics["latency"], "no latency histograms recorded"
            assert metrics["snapshot_publishes"] >= 1, metrics
            print(
                f"serve-smoke: {total} requests, "
                f"mean batch {metrics['mean_batch_size']:.2f}, "
                f"{metrics['shed']} shed, "
                f"snapshot v{metrics['snapshot_version']}"
            )
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                remainder, _ = process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                raise AssertionError("server did not drain within 30s")
        sys.stdout.write("".join(f"[server] {l}\n" for l in remainder.splitlines()))
        assert process.returncode == 0, (
            f"server exited {process.returncode}"
        )
        assert "drained, bye" in remainder, remainder
        print("serve-smoke: clean SIGTERM drain, exit 0")
        if args.trace:
            assert os.path.exists(args.trace), (
                f"--trace given but {args.trace} was never written"
            )
            with open(args.trace) as handle:
                lines = sum(1 for _ in handle)
            assert lines >= QUERIES, (
                f"trace has {lines} events for {QUERIES} queries"
            )
            print(f"serve-smoke: {lines} trace events in {args.trace}")


if __name__ == "__main__":
    main()
