"""Figure 8: L2/L3 cache misses of the CPU algorithms."""

from repro.experiments import fig08


def test_fig08_cache_misses(regenerate):
    l2, l3 = regenerate(fig08, "fig08")

    # MD's cache-conscious static tree gives it by far the fewest L2
    # misses (paper: orders of magnitude).
    md_l2 = l2.cell("MD", "1 socket")
    for algorithm in ("PQ", "ST", "SD"):
        assert md_l2 * 3 < l2.cell(algorithm, "1 socket"), l2.format()

    # The second socket hurts PQ's L3 behaviour most (pointer trees
    # shared across sockets), while ST benefits from the doubled L3.
    assert l3.cell("PQ", "2s/1s") > 1.5, l3.format()
    assert l3.cell("ST", "2s/1s") < 1.0, l3.format()
    assert l3.cell("PQ", "2s/1s") > l3.cell("MD", "2s/1s"), l3.format()

    # MD has the fewest L3 misses in both configurations.
    for algorithm in ("PQ", "ST", "SD"):
        assert l3.cell("MD", "1 socket") < l3.cell(algorithm, "1 socket")
        assert l3.cell("MD", "2 sockets") < l3.cell(algorithm, "2 sockets")
