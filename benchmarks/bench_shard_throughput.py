"""Sharded serving throughput: scatter–gather vs single-process.

Drives the same 256-concurrent-client mixed workload as
``bench_serve_throughput`` through the sharded tier at 1, 2 and 4
shards and compares against the single-process
:class:`~repro.serve.service.SkycubeService` baseline over the
identical ``packed-filtered`` snapshot.  Before any timing, every
sharded configuration must answer the whole workload **bit-identically**
to the baseline — the merge's exactness is a precondition of the
numbers meaning anything.

The workload leans on ad-hoc compute (dynamic top-k passes with
distinct query points, skylines past the materialised level) because
that is what actually fans out: per-shard kernels run in worker
*processes*, so with enough cores the barrier waits ~1/shards as long
per query.  The scaling floor (2 shards >= 1.2x the 1-shard sharded
run) is asserted at full size on hosts with >= 2 cores only; on
smaller hosts and under ``--quick`` the table is recorded with a loose
no-pathological-slowdown guard instead, mirroring
``bench_parallel_scaling``.
"""

import asyncio
import os
import time

from repro.data.generator import generate
from repro.experiments.report import Table
from repro.serve import (
    Request,
    ServingSnapshot,
    SkycubeService,
    SnapshotHolder,
)
from repro.shard import ShardCoordinator, ShardPlan, ShardService

CONCURRENCY = 256
SHARD_COUNTS = (1, 2, 4)
PARTITIONER = "grid"
MAX_LEVEL = 2  # skylines above level 2 hit the ad-hoc kernel


def build_workload(data, d):
    """256 mixed requests biased toward real per-shard compute."""
    full = (1 << d) - 1
    wide = [full, full ^ 1, full ^ 2, full >> 1]  # above MAX_LEVEL
    requests = []
    for i in range(CONCURRENCY):
        kind = i % 4
        if kind == 0:  # wide ad-hoc skylines
            requests.append(Request(op="skyline", delta=wide[i % len(wide)]))
        elif kind == 1:  # materialised probes
            requests.append(Request(op="skyline", delta=(1 << (i % d)) | 1))
        elif kind == 2:  # O(n) membership scans
            requests.append(
                Request(op="membership", point_id=(i * 31) % len(data),
                        delta=full)
            )
        else:  # distinct-query top-k: no coalescing, pure compute
            q = tuple(float(v) + (i % 7) for v in data[(i * 17) % len(data)])
            requests.append(Request(op="topk_dynamic", q=q, k=8))
    return requests


async def drive(service, requests):
    """All 256 in flight at once; returns (elapsed, responses)."""
    await service.start()
    try:
        start = time.perf_counter()
        responses = await asyncio.gather(
            *(service.submit(request) for request in requests)
        )
        elapsed = time.perf_counter() - start
    finally:
        await service.stop()
    for response in responses:
        assert response.ok, (response.error, response.message)
        assert response.partial is None, response.partial
    return elapsed, responses


def run_single(data, requests):
    holder = SnapshotHolder(
        ServingSnapshot.build(
            data, max_level=MAX_LEVEL, engine="packed-filtered"
        )
    )
    service = SkycubeService(
        holder, window=0.002, max_batch=64, max_pending=2 * CONCURRENCY
    )
    return asyncio.run(drive(service, requests))


def run_sharded(data, requests, shards):
    plan = ShardPlan.build(data, shards, partitioner=PARTITIONER)
    coordinator = ShardCoordinator(
        data, plan, engine="packed-filtered", max_level=MAX_LEVEL
    )
    service = ShardService(
        coordinator, window=0.002, max_batch=64,
        max_pending=2 * CONCURRENCY,
    )
    return asyncio.run(drive(service, requests))


def test_shard_throughput(benchmark, quick):
    n = 1_500 if quick else 12_000
    d = 6
    data = generate("anticorrelated", n, d, seed=3)
    requests = build_workload(data, d)

    def measure():
        results = {}
        elapsed, baseline_responses = run_single(data, requests)
        results["single"] = elapsed
        baseline = [r.result for r in baseline_responses]
        for shards in SHARD_COUNTS:
            elapsed, responses = run_sharded(data, requests, shards)
            # Bit-identity before the numbers mean anything.
            assert [r.result for r in responses] == baseline, (
                f"sharded answers diverged at shards={shards}"
            )
            results[shards] = elapsed
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = Table(
        f"Sharded serving throughput: {CONCURRENCY} concurrent mixed "
        f"queries, anticorrelated n={n} d={d}, partitioner="
        f"{PARTITIONER}, max_level={MAX_LEVEL}",
        ["configuration", "req/s", "elapsed ms", "speedup vs single"],
        notes=[
            f"host has {os.cpu_count()} cores; every sharded answer "
            f"asserted bit-identical to the single-process "
            f"packed-filtered baseline before timing",
            "single = SkycubeService, one process; shards = N worker "
            "processes behind the scatter-gather coordinator",
        ],
    )
    single = results["single"]
    table.add_row(
        "single process", CONCURRENCY / single, 1000.0 * single, 1.0
    )
    for shards in SHARD_COUNTS:
        elapsed = results[shards]
        table.add_row(
            f"{shards} shard{'s' if shards > 1 else ''}",
            CONCURRENCY / elapsed,
            1000.0 * elapsed,
            single / elapsed,
        )
    table.save("shard_throughput.txt")

    # Scaling floor: with real cores and full-size work, two worker
    # processes must beat one.  On single-core hosts (and --quick) only
    # the no-pathological-slowdown direction is guarded: the IPC +
    # merge overhead must not eat more than ~10x over single-process.
    if not quick and (os.cpu_count() or 1) >= 2:
        assert results[1] / results[2] > 1.2, table.format()
    assert results[2] < 10.0 * single, table.format()
