"""Figure 13 / Appendix A.2: partial skycube computation."""

from repro.experiments import fig13
from repro.experiments.fig13 import PARTIAL_D, partial_cpu_seconds


def test_fig13_partial(regenerate):
    tables = regenerate(fig13, "fig13")
    assert len(tables) == 6

    # The lattice methods gain substantially when only the bottom
    # quarter of the lattice is needed; MD's savings are modest.
    for distribution in ("anticorrelated", "independent"):
        st_full = partial_cpu_seconds("stsc", distribution, PARTIAL_D)
        st_partial = partial_cpu_seconds("stsc", distribution, 2)
        assert st_partial < 0.6 * st_full, (
            f"ST should gain strongly from partial computation "
            f"({distribution}: {st_partial:.4f}s vs {st_full:.4f}s)"
        )
        md_full = partial_cpu_seconds("mdmc-cpu", distribution, PARTIAL_D)
        md_partial = partial_cpu_seconds("mdmc-cpu", distribution, 2)
        assert md_partial > 0.3 * md_full, (
            "MD's partial savings should be modest (filter work remains)"
        )

    # On correlated data MD barely benefits at all (paper: "one might
    # as well compute the entire skycube").
    md_full_c = partial_cpu_seconds("mdmc-cpu", "correlated", PARTIAL_D)
    md_partial_c = partial_cpu_seconds("mdmc-cpu", "correlated", 2)
    assert md_partial_c > 0.4 * md_full_c
