"""Figure 10: data-TLB miss rates and page-walk time."""

from repro.experiments import fig10


def test_fig10_tlb(regenerate):
    rate, walk = regenerate(fig10, "fig10")

    # MD's spatially local scans give it the lowest STLB miss rate.
    for algorithm in ("PQ", "ST", "SD"):
        assert rate.cell("MD", "1 socket %") < rate.cell(
            algorithm, "1 socket %"
        ), rate.format()
    # PQ's *absolute* miss count is comparable to ST/SD's (paper: its
    # low rate is an artefact of issuing ~4x fewer load uops).
    pq_abs = rate.cell("PQ", "abs misses (1s)")
    st_abs = rate.cell("ST", "abs misses (1s)")
    assert pq_abs > st_abs / 10, rate.format()
    # Page walks never cost MD more than the lattice methods (its
    # residual walks come from the Hybrid-based setup phase, which
    # dominates at the scaled workload size).
    for algorithm in ("PQ", "ST", "SD"):
        assert walk.cell("MD", "1 socket %") <= 1.15 * walk.cell(
            algorithm, "1 socket %"
        ), walk.format()
