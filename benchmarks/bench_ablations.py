"""Ablations of the design choices DESIGN.md calls out."""

from repro.experiments import ablations


def test_ablations(regenerate):
    (depth, mt_dt, memo, widths, level_order, parent, direction) = (
        regenerate(ablations, "ablations")
    )

    # The third tree level only adds strict-dominance evidence.
    provable = depth.column("avg strict dims provable / point")
    assert provable[1] >= provable[0], depth.format()

    # Point-based partitioning trades DTs for MTs relative to BNL.
    assert mt_dt.cell("bskytree", "DTs") < mt_dt.cell("bnl", "DTs")
    assert mt_dt.cell("hybrid", "DTs") < mt_dt.cell("bnl", "DTs")
    assert mt_dt.cell("bnl", "MTs") == 0

    # Memoization: the closure cache is bounded by the 2**d distinct
    # masks, far below the number of leaf DTs that would each expand
    # their submasks without it.
    dts = memo.cell("leaf DTs executed", "value")
    cached = memo.cell("distinct masks cached globally", "value")
    assert cached <= (1 << 8) - 1, memo.format()
    assert dts > 10 * cached, memo.format()

    # Wider HashCube words compress harder (until the id floor).
    ratios = widths.column("lattice ids / hashcube ids")
    assert ratios == sorted(ratios), widths.format()

    # Level-ordered HashCube bits save storage on partial skycubes.
    for saving in level_order.column("saving %"):
        assert saving > 0, level_order.format()

    # The argmin parent rule shrinks the reduced inputs.
    assert parent.cell("smallest", "dominance tests") <= parent.cell(
        "first", "dominance tests"
    ), parent.format()

    # Top-down traversal does far less dominance work than bottom-up.
    assert direction.cell("top-down", "dominance tests") < direction.cell(
        "bottom-up", "dominance tests"
    ), direction.format()
