"""Real multicore scaling of the process execution backend.

Every other bench in this suite replays *simulated* makespans; this one
measures genuine wall clock.  It materialises the MDMC skycube of the
correlated workload through :mod:`repro.engine.parallel` at 1/2/4/8
workers, verifies each result equals the serial reference bit for bit,
and reports the speedup curve.  The asserted floor — >1.5x over the
serial backend at 4 workers — holds even on a single core because the
in-worker kernels are vectorized; on real multicore hardware the curve
additionally reflects pool parallelism.
"""

import os
import time

from repro.data.generator import generate
from repro.experiments.report import Table
from repro.templates import MDMC

WORKER_COUNTS = (1, 2, 4, 8)


def test_parallel_scaling(benchmark, quick):
    n = 2_000 if quick else 20_000
    d = 6
    data = generate("correlated", n, d, seed=0)

    def measure():
        timings = {}
        start = time.perf_counter()
        reference = MDMC().materialise(data)
        timings["serial"] = time.perf_counter() - start
        for workers in WORKER_COUNTS:
            start = time.perf_counter()
            run = MDMC(executor="process", workers=workers).materialise(data)
            timings[workers] = time.perf_counter() - start
            assert run.skycube == reference.skycube, (
                f"process backend diverged at workers={workers}"
            )
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = Table(
        f"Process-backend scaling: MDMC, correlated n={n} d={d}",
        ["configuration", "seconds", "speedup vs serial"],
        notes=[
            f"host has {os.cpu_count()} cores; "
            "speedup combines vectorized kernels and pool parallelism"
        ],
    )
    table.add_row("serial backend", timings["serial"], 1.0)
    for workers in WORKER_COUNTS:
        table.add_row(
            f"process, {workers} worker{'s' if workers > 1 else ''}",
            timings[workers],
            timings["serial"] / timings[workers],
        )
    table.save("parallel_scaling.txt")

    # The 1.5x floor is the full-size (n >= 20k) criterion; at quick/CI
    # size pool start-up overhead dominates, so only guard against a
    # pathological slowdown there (equality above is always strict).
    speedup_at_4 = timings["serial"] / timings[4]
    threshold = 0.3 if quick else 1.5
    assert speedup_at_4 > threshold, table.format()
