"""Packed-bitset engine speedup over the per-point loop sweep.

The acceptance bench for the ``engine="packed"`` fast path of
:func:`repro.engine.fast_skycube`: at the paper's stress point
(anticorrelated, n=20 000, d=8 — 255 subspaces, ~15 000 extended
skyline points) the uint64 array-at-a-time sweep must beat the
per-point big-int sweep by >= 5x while producing a bit-identical
skycube.  The ``engine="loop"`` baseline shares this PR's vectorised
``S+`` filter, which makes it *stricter* than the pre-PR
``fast_skycube`` (33.98 s on the reference host vs 29.07 s for the
loop engine): clearing 5x against the loop engine implies more than 5x
against the code this PR replaced.

A jit-backend row times the same packed-filtered sweep through the
selected kernel backend (``--backend`` pins one strictly; the default
picks the fastest available).  With a real accelerated backend (numba
or cupy) the row must clear >= 2x over the numpy packed engine at full
size; on a numpy-only host the row is annotated as the fallback and
only bit-identity is asserted.

A second section times :meth:`repro.serve.ServingSnapshot.build` with
both engines at reduced n — the serving layer's bootstrap is the main
in-repo consumer of the packed path.
"""

import time

from repro.data.generator import generate
from repro.engine.jit import resolve_backend
from repro.engine.kernels import fast_skycube
from repro.experiments.report import Table
from repro.serve import ServingSnapshot

SPEEDUP_FLOOR = 5.0
JIT_SPEEDUP_FLOOR = 2.0


def _pick_backend(backend_option):
    """Resolve the bench backend: strict for an explicit choice,
    fastest-available otherwise."""
    if backend_option:
        return resolve_backend(backend_option, strict=True)
    return resolve_backend("auto")


def test_packed_engine_speedup(benchmark, quick, backend_option):
    n, d = (2_000, 6) if quick else (20_000, 8)
    data = generate("anticorrelated", n, d, seed=7)
    serve_n = 1_000 if quick else 6_000
    jit = _pick_backend(backend_option)
    accelerated = jit.name != "numpy"

    def measure():
        timings = {}
        start = time.perf_counter()
        loop_cube = fast_skycube(data, engine="loop")
        timings["loop"] = time.perf_counter() - start
        start = time.perf_counter()
        packed_cube = fast_skycube(data, engine="packed")
        timings["packed"] = time.perf_counter() - start
        assert packed_cube.store == loop_cube.store, (
            "packed engine diverged from the loop reference"
        )
        # Warm the jit backend (compilation is one-time, amortised over
        # a process lifetime) and gate bit-identity BEFORE timing.
        jit_cube = fast_skycube(
            data, engine="packed-filtered", backend=jit.name
        )
        assert jit_cube.store == loop_cube.store, (
            f"backend={jit.name!r} diverged from the loop reference"
        )
        start = time.perf_counter()
        fast_skycube(data, engine="packed-filtered", backend=jit.name)
        timings["jit"] = time.perf_counter() - start
        start = time.perf_counter()
        ServingSnapshot.build(data[:serve_n], engine="loop")
        timings["serve_loop"] = time.perf_counter() - start
        start = time.perf_counter()
        ServingSnapshot.build(data[:serve_n], engine="packed")
        timings["serve_packed"] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = timings["loop"] / timings["packed"]
    jit_speedup = timings["loop"] / timings["jit"]
    jit_vs_packed = timings["packed"] / timings["jit"]
    serve_speedup = timings["serve_loop"] / timings["serve_packed"]
    jit_label = f"packed-filtered, backend={jit.name}"
    if not accelerated:
        jit_label += " (fallback)"
    table = Table(
        f"Packed vs loop skycube engine: anticorrelated n={n} d={d}",
        ["configuration", "seconds", "speedup vs loop"],
        notes=[
            "all engines and backends verified bit-identical before timing",
            "loop baseline includes this PR's vectorised S+ filter, so it "
            "is stricter than the pre-PR fast_skycube (33.98 s vs 29.07 s "
            "for the loop engine on the reference host at n=20k d=8)",
            f"jit row: backend={jit.name} "
            + (
                f"({jit_vs_packed:.2f}x vs engine=packed; floor "
                f"{JIT_SPEEDUP_FLOOR}x at full size)"
                if accelerated
                else "(numpy fallback — install the accel extra for the "
                "compiled row; no speedup floor applies)"
            ),
            f"serve bootstrap section uses n={serve_n}",
        ],
    )
    table.add_row("engine=loop", timings["loop"], 1.0)
    table.add_row("engine=packed", timings["packed"], speedup)
    table.add_row(jit_label, timings["jit"], jit_speedup)
    table.add_row("serve bootstrap, loop", timings["serve_loop"], "")
    table.add_row(
        "serve bootstrap, packed", timings["serve_packed"], serve_speedup
    )
    table.save("kernels_packed.txt")

    # The 5x floor is the full-size acceptance criterion; at quick/CI
    # size per-call overheads dominate, so only guard against a
    # pathological slowdown there (bit-identity above is always strict).
    threshold = 1.0 if quick else SPEEDUP_FLOOR
    assert speedup > threshold, table.format()
    # The 2x jit floor only applies when a real accelerated backend ran
    # at full size; the numpy fallback row is informational.
    if accelerated and not quick:
        assert jit_vs_packed > JIT_SPEEDUP_FLOOR, table.format()
