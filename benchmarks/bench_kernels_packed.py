"""Packed-bitset engine speedup over the per-point loop sweep.

The acceptance bench for the ``engine="packed"`` fast path of
:func:`repro.engine.fast_skycube`: at the paper's stress point
(anticorrelated, n=20 000, d=8 — 255 subspaces, ~15 000 extended
skyline points) the uint64 array-at-a-time sweep must beat the
per-point big-int sweep by >= 5x while producing a bit-identical
skycube.  The ``engine="loop"`` baseline shares this PR's vectorised
``S+`` filter, which makes it *stricter* than the pre-PR
``fast_skycube`` (33.98 s on the reference host vs 29.07 s for the
loop engine): clearing 5x against the loop engine implies more than 5x
against the code this PR replaced.

A second section times :meth:`repro.serve.ServingSnapshot.build` with
both engines at reduced n — the serving layer's bootstrap is the main
in-repo consumer of the packed path.
"""

import time

from repro.data.generator import generate
from repro.engine.kernels import fast_skycube
from repro.experiments.report import Table
from repro.serve import ServingSnapshot

SPEEDUP_FLOOR = 5.0


def test_packed_engine_speedup(benchmark, quick):
    n, d = (2_000, 6) if quick else (20_000, 8)
    data = generate("anticorrelated", n, d, seed=7)
    serve_n = 1_000 if quick else 6_000

    def measure():
        timings = {}
        start = time.perf_counter()
        loop_cube = fast_skycube(data, engine="loop")
        timings["loop"] = time.perf_counter() - start
        start = time.perf_counter()
        packed_cube = fast_skycube(data, engine="packed")
        timings["packed"] = time.perf_counter() - start
        assert packed_cube.store == loop_cube.store, (
            "packed engine diverged from the loop reference"
        )
        start = time.perf_counter()
        ServingSnapshot.build(data[:serve_n], engine="loop")
        timings["serve_loop"] = time.perf_counter() - start
        start = time.perf_counter()
        ServingSnapshot.build(data[:serve_n], engine="packed")
        timings["serve_packed"] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = timings["loop"] / timings["packed"]
    serve_speedup = timings["serve_loop"] / timings["serve_packed"]
    table = Table(
        f"Packed vs loop skycube engine: anticorrelated n={n} d={d}",
        ["configuration", "seconds", "speedup vs loop"],
        notes=[
            "both engines verified bit-identical before timing",
            "loop baseline includes this PR's vectorised S+ filter, so it "
            "is stricter than the pre-PR fast_skycube (33.98 s vs 29.07 s "
            "for the loop engine on the reference host at n=20k d=8)",
            f"serve bootstrap section uses n={serve_n}",
        ],
    )
    table.add_row("engine=loop", timings["loop"], 1.0)
    table.add_row("engine=packed", timings["packed"], speedup)
    table.add_row("serve bootstrap, loop", timings["serve_loop"], "")
    table.add_row(
        "serve bootstrap, packed", timings["serve_packed"], serve_speedup
    )
    table.save("kernels_packed.txt")

    # The 5x floor is the full-size acceptance criterion; at quick/CI
    # size per-call overheads dominate, so only guard against a
    # pathological slowdown there (bit-identity above is always strict).
    threshold = 1.0 if quick else SPEEDUP_FLOOR
    assert speedup > threshold, table.format()
