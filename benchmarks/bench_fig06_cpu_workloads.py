"""Figure 6: CPU execution times across workloads."""

from repro.experiments import fig06
from repro.experiments.fig06 import cpu_seconds
from repro.experiments.workloads import N_SWEEP


def test_fig06_cpu_workloads(regenerate):
    tables = regenerate(fig06, "fig06")
    assert len(tables) == 6  # {A,I,C} x {vs n, vs d}

    # MD is the fastest CPU method on every anticorrelated and
    # independent workload of the sweep (paper: "across most workloads,
    # MD is the fastest, followed by ST, SD, PQ").
    for distribution in ("anticorrelated", "independent"):
        for n in N_SWEEP:
            md = cpu_seconds("mdmc-cpu", distribution, n, 8)
            for other in ("pqskycube", "stsc", "sdsc-cpu"):
                assert md < cpu_seconds(other, distribution, n, 8), (
                    f"MD not fastest on {distribution} n={n}"
                )

    # PQ is the slowest on the default-style workloads...
    for distribution in ("anticorrelated", "independent"):
        pq = cpu_seconds("pqskycube", distribution, 2000, 8)
        for other in ("stsc", "sdsc-cpu", "mdmc-cpu"):
            assert pq > cpu_seconds(other, distribution, 2000, 8)

    # ...while on correlated data the tiny parallel tasks hurt SD:
    # it falls behind PQ (paper, Figure 6 bottom-left).
    sd_c = cpu_seconds("sdsc-cpu", "correlated", 2000, 8)
    pq_c = cpu_seconds("pqskycube", "correlated", 2000, 8)
    assert sd_c > 0.5 * pq_c, "SD should lose its edge on correlated data"
