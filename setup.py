"""Shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on setuptools 65 needs
``bdist_wheel`` unless a ``setup.py`` is present to enable the legacy
editable path.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
